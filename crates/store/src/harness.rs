//! One-call construction of a complete store deployment inside the
//! simulator: the shared server fleet, the writer/reader clients, fault
//! hooks, and per-key history extraction for the checkers.

use crate::health::{FlightRecord, ReplicaHealth, ShardHealth, StoreHealth};
use crate::msg::{StoreMsg, StoreOut};
use crate::node::{DataPlane, StoreClientNode, StorePayload, StoreServerNode, StoreWire};
use crate::router::{KeyRouter, ReshardPlan, RoutingTable};
use crate::val::StoreVal;
use sbs_bulk::{data_replica_count, BulkCodec, BulkRef, BulkStore, FragmentStore};
use sbs_check::{
    atomic_stabilization_point, check_linearizable, History, InitialState, OpKind, OpRecord,
};
use sbs_core::{
    ByzServerNode, ByzStrategy, Payload, RegId, RegMsg, RegisterConfig, SeqVal, ServerNode,
    SyncMode,
};
use sbs_sim::{
    ConsistencyMonitor, DelayModel, DetRng, LatencyHistogram, LatencySummary, Node, OpId,
    ProcessId, SimConfig, SimDuration, SimTime, Simulation, Violation,
};
use sbs_stamps::{RingSeq, PAPER_MODULUS};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How long `settle` simulates before declaring the store non-quiescent
/// (the [`StoreBuilder::settle_horizon`] default).
const SETTLE_HORIZON: SimDuration = SimDuration::secs(600);

/// The communication assumption a store is built for, as carried by the
/// builder: the synchronous variant keeps the *link bound* it was declared
/// with (the per-round timeout is derived from it at build time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BuilderMode {
    /// Figure 2/3: unbounded delays, `n ≥ 8t + 1`.
    Async,
    /// Figure 5 / Appendix A: delays bounded by `link_bound`, `n ≥ 3t + 1`.
    Sync { link_bound: SimDuration },
}

/// A frozen snapshot of everything one deployment was built with: the
/// communication mode (with its derived timeout), the data plane, the
/// sharding shape, and the per-mode quorum sizes the embedded register
/// engines will use. Obtained from [`StoreBuilder::config`] before
/// building, or [`StoreSystem::config`] on a running deployment.
///
/// The quorum fields are *derived* values (they follow from `n`, `t` and
/// `mode` per the Figure 2/5 table in `sbs_core::RegisterConfig`), frozen
/// here so tests can pin them and operators can read them off a deployment
/// without re-deriving the paper's arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of servers in the shared fleet.
    pub n: usize,
    /// Byzantine servers tolerated.
    pub t: usize,
    /// Communication assumption (the synchronous variant carries the
    /// derived per-round timeout).
    pub mode: SyncMode,
    /// Where shard payload bytes travel.
    pub plane: DataPlane,
    /// Register shards the keyspace is hashed onto.
    pub shards: u32,
    /// Writer clients the shards are partitioned over.
    pub writers: usize,
    /// Additional read-only clients.
    pub extra_readers: usize,
    /// Acknowledgements a client round waits for (`n − t` async; all `n`
    /// — or the timeout — sync).
    pub ack_quorum: usize,
    /// Identical `last_val` copies a read needs (`2t + 1` / `t + 1`).
    pub last_quorum: usize,
    /// Identical helping copies a read needs (`2t + 1` / `t + 1`).
    pub help_quorum: usize,
    /// Identical helping copies letting the writer skip `NEW_HELP_VAL`
    /// (`4t + 1` / `t + 1`).
    pub writer_help_quorum: usize,
}

impl StoreConfig {
    /// True in synchronous mode.
    pub fn is_sync(&self) -> bool {
        matches!(self.mode, SyncMode::Sync { .. })
    }

    /// The derived per-round timeout, if operating synchronously.
    pub fn timeout(&self) -> Option<SimDuration> {
        match self.mode {
            SyncMode::Async => None,
            SyncMode::Sync { timeout } => Some(timeout),
        }
    }
}

/// Builder for a [`StoreSystem`].
///
/// Entry points carry the communication mode and derive the minimal fleet
/// for it — [`StoreBuilder::asynchronous`] (`n = 8t + 1`) and
/// [`StoreBuilder::synchronous`] (`n = 3t + 1`) — with [`StoreBuilder::n`]
/// to deploy more servers than the minimum. Cross-knob consistency is
/// validated when the deployment is built (or when
/// [`StoreBuilder::config`] snapshots it): the resilience bound for the
/// mode, a synchronous link bound that dominates the delay model, bulk
/// replication that fits the fleet, and well-formed Byzantine slots.
#[derive(Clone, Debug)]
pub struct StoreBuilder {
    n: usize,
    t: usize,
    mode: BuilderMode,
    seed: u64,
    shards: u32,
    writers: usize,
    extra_readers: usize,
    delay: DelayModel,
    byz: Vec<(usize, ByzStrategy)>,
    retry_after: Option<SimDuration>,
    wsn_modulus: u128,
    plane: DataPlane,
    settle_horizon: SimDuration,
    batch_window: SimDuration,
    adaptive_batch: bool,
    bulk_retain: Option<usize>,
    anti_entropy: Option<SimDuration>,
    trace: usize,
    monitor: bool,
}

impl StoreBuilder {
    fn with_mode(n: usize, t: usize, mode: BuilderMode, delay: DelayModel) -> Self {
        StoreBuilder {
            n,
            t,
            mode,
            seed: 1,
            shards: 1,
            writers: 1,
            extra_readers: 0,
            delay,
            byz: Vec::new(),
            retry_after: None,
            wsn_modulus: PAPER_MODULUS,
            plane: DataPlane::Full,
            settle_horizon: SETTLE_HORIZON,
            batch_window: SimDuration::ZERO,
            adaptive_batch: false,
            bulk_retain: None,
            anti_entropy: None,
            trace: 0,
            monitor: false,
        }
    }

    /// An **asynchronous** store (Figure 2/3 registers: unbounded link
    /// delays, rounds wait for `n − t` acknowledgements) tolerating `t`
    /// Byzantine servers on the minimal fleet `n = 8t + 1`, with one shard
    /// and one writer by default. Use [`StoreBuilder::n`] to deploy more
    /// servers than the minimum.
    pub fn asynchronous(t: usize) -> Self {
        Self::with_mode(
            8 * t + 1,
            t,
            BuilderMode::Async,
            DelayModel::Uniform {
                lo: SimDuration::micros(50),
                hi: SimDuration::millis(2),
            },
        )
    }

    /// A **synchronous** store (Figure 5 / Appendix A registers: link
    /// delays bounded by `link_bound`, rounds wait for all `n`
    /// acknowledgements or the timeout derived from the bound) tolerating
    /// `t` Byzantine servers on the minimal fleet `n = 3t + 1` — fewer
    /// than half the asynchronous fleet for the same `t`, paying with
    /// timeout-bound latency whenever a server is silent.
    ///
    /// The default delay model is uniform in `[link_bound / 10,
    /// link_bound]`; overriding it with [`StoreBuilder::delay`] is
    /// validated at build time — the model's upper bound must stay within
    /// `link_bound`, otherwise the mode's "wait for all `n` or time out"
    /// rule would wrongly suspect correct-but-slow servers.
    pub fn synchronous(t: usize, link_bound: SimDuration) -> Self {
        Self::with_mode(
            3 * t + 1,
            t,
            BuilderMode::Sync { link_bound },
            DelayModel::Uniform {
                lo: SimDuration::nanos(link_bound.as_nanos() / 10),
                hi: link_bound,
            },
        )
    }

    /// Deploys `n` servers instead of the mode's minimal fleet. The
    /// mode's resilience bound (`n ≥ 8t + 1` asynchronous, `n ≥ 3t + 1`
    /// synchronous) is still enforced at build time.
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Switches the payload to the content-addressed **bulk data plane**
    /// with the canonical `2t + 1` data replicas per shard (the
    /// Cachin–Dobre–Vukolić bound); the metadata quorum then carries only
    /// fixed-size references. The default remains [`DataPlane::Full`] —
    /// full replication, the paper's original scheme. Explicitly selects
    /// *whole copies*: calling this after [`StoreBuilder::bulk_coded`]
    /// switches back to full-copy replication.
    pub fn bulk(mut self) -> Self {
        self.plane = DataPlane::Full;
        let r = data_replica_count(self.t);
        self.data_replicas(r)
    }

    /// Sets the bulk-plane replication factor, switching to the
    /// whole-copy plane unless coded mode was already selected —
    /// `.data_replicas(m).bulk_coded(k)` and
    /// `.bulk_coded(k).data_replicas(m)` configure the same deployment,
    /// so the documented AVID overprovisioning recipe cannot silently
    /// lose its coding by call order (an undersized window still fails
    /// the `k + t ≤ replicas` build-time validation).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ replicas ≤ n`.
    pub fn data_replicas(mut self, replicas: usize) -> Self {
        assert!(
            (1..=self.n).contains(&replicas),
            "replication factor {replicas} out of range for n={}",
            self.n
        );
        self.plane = match self.plane {
            DataPlane::Coded { k, .. } => DataPlane::Coded { replicas, k },
            DataPlane::Full | DataPlane::Bulk { .. } => DataPlane::Bulk { replicas },
        };
        self
    }

    /// Switches the payload to the **erasure-coded bulk plane**
    /// (AVID-style dispersal): the same replica window as
    /// [`StoreBuilder::bulk`] — `2t + 1` by default, or whatever an
    /// earlier [`StoreBuilder::data_replicas`] selected — but each
    /// replica stores only **one `k`-of-`m` fragment** (~`1/k` of the
    /// payload), verified against a Merkle commitment whose root rides
    /// the metadata quorum. Pushes wait for `k + t` verified
    /// acknowledgements; reads reconstruct from any `k` verified
    /// fragments.
    ///
    /// Cross-knob consistency (`k ≥ 1`, `k + t ≤ replicas` — reads must
    /// stay live with `t` Byzantine replicas garbling their fragments)
    /// is validated at build time.
    ///
    /// Write-liveness note: on the minimal `2t + 1` window with `k > 1`
    /// the `k + t` push quorum needs acks from every replica, so a
    /// **fail-silent** data replica would stall puts (the in-repo
    /// adversaries ack honestly and lie only when serving, so
    /// simulations stay live). Deployments that must tolerate silent
    /// data replicas should overprovision:
    /// `.data_replicas(3 * t + 1).bulk_coded(t + 1)` restores write
    /// liveness from honest acks alone (the classical AVID shape).
    pub fn bulk_coded(mut self, k: usize) -> Self {
        let replicas = match self.plane {
            DataPlane::Bulk { replicas } | DataPlane::Coded { replicas, .. } => replicas,
            DataPlane::Full => data_replica_count(self.t),
        };
        self.plane = DataPlane::Coded { replicas, k };
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of register shards the keyspace is hashed onto.
    pub fn shards(mut self, shards: u32) -> Self {
        assert!(shards >= 1);
        self.shards = shards;
        self
    }

    /// Number of writer clients the shards are partitioned over
    /// (round-robin; each shard keeps a single writer — the SWMR rule).
    pub fn writers(mut self, writers: usize) -> Self {
        assert!(writers >= 1);
        self.writers = writers;
        self
    }

    /// Additional read-only clients.
    pub fn extra_readers(mut self, readers: usize) -> Self {
        self.extra_readers = readers;
        self
    }

    /// Overrides the link delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Makes server `index` Byzantine with the given strategy. Validated
    /// at build time: the index must name a server (`index < n`), no
    /// server may be assigned twice, and at most `t` servers may be
    /// Byzantine (the resilience claim is meaningless beyond `t`).
    pub fn byzantine(mut self, index: usize, strategy: ByzStrategy) -> Self {
        self.byz.push((index, strategy));
        self
    }

    /// Overrides the asynchronous retransmission period.
    pub fn retry_after(mut self, d: SimDuration) -> Self {
        self.retry_after = Some(d);
        self
    }

    /// Overrides the bounded sequence-number modulus (must be odd).
    pub fn wsn_modulus(mut self, modulus: u128) -> Self {
        self.wsn_modulus = modulus;
        self
    }

    /// Sets the clients' Nagle **batch window**: an operation arriving at
    /// a fully idle client is held up to `window` so operations arriving
    /// within it (open-loop bursts) fold into the same register round —
    /// queued puts on one shard share a single map publish, queued gets
    /// on one shard share a single metadata read. Zero (the default)
    /// launches every operation immediately, reproducing the unbatched
    /// behavior exactly. No operation is ever held past its flush
    /// deadline, and queue order is preserved. Safe in both communication
    /// modes: the hold delays only the *launch*, never a round in flight,
    /// so the synchronous timeout discipline is untouched.
    pub fn batch_window(mut self, window: SimDuration) -> Self {
        self.batch_window = window;
        self
    }

    /// Makes the Nagle [`StoreBuilder::batch_window`] **adaptive**: an
    /// operation that finds its client fully idle — nothing held,
    /// nothing in flight, i.e. the queue has just drained — closes the
    /// window early and launches immediately, killing the idle-latency
    /// cost of the hold. Operations arriving while a round is in flight
    /// still coalesce exactly as before, so batching under backlog (and
    /// per-key write order) is preserved; launching *earlier* only
    /// shrinks latitude the register contract already grants. Off by
    /// default: without this call every run is bit-identical to the
    /// fixed-window behavior. No effect while the window is zero.
    pub fn adaptive_batch(mut self) -> Self {
        self.adaptive_batch = true;
        self
    }

    /// Bounds every data replica's blob store to the last `retain`
    /// distinct digests per shard (retain-last-K GC): overwrite churn
    /// then plateaus instead of accumulating orphaned snapshots.
    /// `retain ≥ 2` keeps the previous snapshot resolvable for concurrent
    /// readers; readers chasing older references fall back to a metadata
    /// re-read. Only meaningful together with [`StoreBuilder::bulk`].
    ///
    /// # Panics
    ///
    /// Panics on `retain == 0` at build time (a replica storing nothing
    /// could never acknowledge a push).
    pub fn bulk_retain(mut self, retain: usize) -> Self {
        self.bulk_retain = Some(retain);
        self
    }

    /// Enables the **self-healing data plane** with anti-entropy period
    /// `period`: every data replica then (a) pulls missing or corrupt
    /// entries from its window peers the moment a serve detects them
    /// (proactive repair — no writer involvement), (b) re-checks the
    /// digest / Merkle path of everything it serves, and (c) gossips a
    /// bounded rotating digest summary to one peer per period, pulling
    /// whatever it should hold but does not — so a replica whose data
    /// stores were wiped mid-run converges back to the committed state.
    /// Server↔server links are installed only when this is set.
    ///
    /// **Off by default**, and deliberately so: with it off no extra
    /// timers, messages, links, or RNG draws exist, keeping every
    /// pre-existing run bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on a zero period at build time (the gossip timer could
    /// never advance).
    pub fn anti_entropy(mut self, period: SimDuration) -> Self {
        self.anti_entropy = Some(period);
        self
    }

    /// Enables the protocol trace: the simulation keeps the most recent
    /// `capacity` structured events (op lifecycle, phase transitions,
    /// quorum acks, retransmissions, fault injections, guard refusals),
    /// readable through [`StoreSystem::tracer`](StoreSystem) and
    /// exportable as JSONL or Chrome trace-event JSON. Zero (the default)
    /// leaves tracing off — the hot path then pays a single branch and
    /// allocates nothing, and every message/byte count is bit-identical
    /// to an untraced run.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace = capacity;
        self
    }

    /// Enables the online atomicity monitor: every `put`/`get` is fed to
    /// an incremental per-key WGL-style checker as it is invoked and
    /// completed, so a non-atomic response is flagged **at event time**
    /// (with the violating op, its sim-time, and the culprit op set —
    /// see [`StoreSystem::monitor_violations`](StoreSystem)) instead of
    /// by a post-hoc history check. Off by default; monitoring is
    /// harness-side only and never perturbs the simulation schedule.
    pub fn monitor(mut self) -> Self {
        self.monitor = true;
        self
    }

    /// Overrides how long [`StoreSystem::settle`] simulates before
    /// declaring the store non-quiescent (default 600 simulated seconds).
    /// Long open-loop runs and timeout-heavy synchronous deployments can
    /// extend it; tests probing wedged states can shrink it.
    ///
    /// # Panics
    ///
    /// Panics on a zero horizon (settle could then never make progress).
    pub fn settle_horizon(mut self, horizon: SimDuration) -> Self {
        assert!(
            horizon > SimDuration::ZERO,
            "settle horizon must be positive"
        );
        self.settle_horizon = horizon;
        self
    }

    /// Validates cross-knob consistency and derives the register
    /// configuration the embedded engines will run with.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency: the mode's resilience bound
    /// (`n ≥ 8t + 1` / `n ≥ 3t + 1`), a synchronous link bound that the
    /// delay model exceeds (or an unbounded delay model in synchronous
    /// mode), a bulk replication factor outside `1..=n`, a Byzantine index
    /// `≥ n`, a duplicated Byzantine index, or more than `t` Byzantine
    /// slots.
    fn register_config(&self) -> RegisterConfig {
        let mut cfg = match self.mode {
            BuilderMode::Async => RegisterConfig::asynchronous(self.n, self.t),
            BuilderMode::Sync { link_bound } => {
                let hi = self.delay.upper_bound().unwrap_or_else(|| {
                    panic!(
                        "synchronous mode requires a bounded delay model, got {:?}",
                        self.delay
                    )
                });
                assert!(
                    hi <= link_bound,
                    "synchronous link bound {link_bound} must dominate the delay model's \
                     upper bound {hi} — a slower link would make correct servers look faulty"
                );
                RegisterConfig::synchronous(self.n, self.t, link_bound)
            }
        };
        if let DataPlane::Bulk { replicas } | DataPlane::Coded { replicas, .. } = self.plane {
            assert!(
                (1..=self.n).contains(&replicas),
                "bulk replication factor {replicas} out of range for n={}",
                self.n
            );
        }
        if let DataPlane::Coded { replicas, k } = self.plane {
            assert!(k >= 1, "coded mode needs at least one fragment to read");
            assert!(
                k + self.t <= replicas,
                "coded reconstruction threshold k={k} too high: k + t must fit within the \
                 {replicas}-replica window, or t={} Byzantine replicas garbling their \
                 fragments could starve every read",
                self.t
            );
            // Fragment indices are GF(2⁸) field points: the Reed–Solomon
            // code caps a dispersal at 256 fragments. Catch an oversized
            // window here, at build time, instead of panicking inside the
            // encoder on the first publish.
            assert!(
                replicas <= 256,
                "coded window of {replicas} replicas exceeds 256: fragment indices are \
                 GF(2⁸) field points, so a dispersal cannot span more fragments"
            );
        }
        assert!(
            self.anti_entropy != Some(SimDuration::ZERO),
            "anti-entropy period must be positive — a zero period could never advance the \
             gossip timer"
        );
        let mut seen = BTreeSet::new();
        for &(i, _) in &self.byz {
            assert!(
                i < self.n,
                "byzantine index {i} out of range: the fleet has servers 0..{}",
                self.n
            );
            assert!(
                seen.insert(i),
                "byzantine index {i} assigned twice — each server takes one strategy"
            );
        }
        assert!(
            self.byz.len() <= self.t,
            "{} byzantine servers exceed the tolerated t={}",
            self.byz.len(),
            self.t
        );
        if let Some(r) = self.retry_after {
            cfg = cfg.with_retry_after(r);
        }
        cfg
    }

    /// Validates the builder and snapshots the [`StoreConfig`] a
    /// deployment built from it would run with — mode, derived timeout,
    /// plane, sharding shape, and the per-mode quorum sizes.
    ///
    /// # Panics
    ///
    /// Panics on any cross-knob inconsistency (see the builder docs).
    pub fn config(&self) -> StoreConfig {
        self.snapshot(self.register_config())
    }

    /// The [`StoreConfig`] for an already-validated register config
    /// (keeps `build` from running the validation twice).
    fn snapshot(&self, cfg: RegisterConfig) -> StoreConfig {
        StoreConfig {
            n: self.n,
            t: self.t,
            mode: cfg.mode,
            plane: self.plane,
            shards: self.shards,
            writers: self.writers,
            extra_readers: self.extra_readers,
            ack_quorum: cfg.ack_quorum(),
            last_quorum: cfg.last_quorum(),
            help_quorum: cfg.help_quorum(),
            writer_help_quorum: cfg.writer_help_quorum(),
        }
    }

    /// Builds the deployment: `n` servers, `writers + extra_readers`
    /// clients, every client↔server link installed, Byzantine slots
    /// filled (Byzantine at *both* planes: register strategy + garbled
    /// bulk serving), and the garbage generator armed for link-corruption
    /// drills.
    ///
    /// # Panics
    ///
    /// Panics on any cross-knob inconsistency (see
    /// [`StoreBuilder::config`]).
    pub fn build<V: Payload + BulkCodec>(&self) -> StoreSystem<V> {
        let cfg = self.register_config();
        let snapshot = self.snapshot(cfg);
        let router = KeyRouter::new(self.shards, self.writers as u32);
        let mut sim: Simulation<StoreWire<V>, StoreOut<V>> =
            Simulation::new(SimConfig::with_seed(self.seed));
        if self.trace > 0 {
            sim.enable_tracing(self.trace);
        }
        let clients: Vec<ProcessId> = (0..self.writers + self.extra_readers)
            .map(|_| sim.reserve_id())
            .collect();
        let servers: Vec<ProcessId> = (0..self.n).map(|_| sim.reserve_id()).collect();
        for &s in &servers {
            for &c in &clients {
                sim.add_duplex(c, s, self.delay.clone());
            }
        }
        // Server↔server links exist only for the self-healing repair
        // plane: without anti-entropy no server ever addresses a peer,
        // and not installing the links keeps the link table (and the
        // delay-model RNG consumption) bit-identical to older builds.
        if self.anti_entropy.is_some() {
            for (i, &a) in servers.iter().enumerate() {
                for &b in &servers[i + 1..] {
                    sim.add_duplex(a, b, self.delay.clone());
                }
            }
        }
        let initial: StorePayload<V> =
            SeqVal::new(RingSeq::zero(self.wsn_modulus), StoreVal::empty());
        // The admission guard every server gets: its fleet slot, the
        // deployment's shard count, and the plane's window shape — so
        // wire-supplied shard tags, fragment totals, and fragment
        // indices are checked against the deployment instead of trusted.
        let (guard_replicas, guard_coded) = match self.plane {
            DataPlane::Full => (0, false),
            DataPlane::Bulk { replicas } => (replicas, false),
            DataPlane::Coded { replicas, .. } => (replicas, true),
        };
        let heal_k = match self.plane {
            DataPlane::Coded { k, .. } => k,
            DataPlane::Full | DataPlane::Bulk { .. } => 1,
        };
        let mut byz_set = BTreeSet::new();
        for (i, &s) in servers.iter().enumerate() {
            match self.byz.iter().find(|(bi, _)| *bi == i) {
                Some((_, strat)) => {
                    byz_set.insert(i);
                    let mut node =
                        StoreServerNode::new(ByzServerNode::<StorePayload<V>, StoreOut<V>>::new(
                            strat.clone(),
                            initial.clone(),
                        ))
                        .bulk_guard(i, self.n, self.shards, guard_replicas, guard_coded)
                        .bulk_retention(self.bulk_retain)
                        .byzantine_bulk();
                    if let Some(period) = self.anti_entropy {
                        node = node.self_healing(servers.clone(), heal_k, period);
                    }
                    sim.add_node_at(s, node)
                }
                None => {
                    let mut node = StoreServerNode::new(
                        ServerNode::<StorePayload<V>, StoreOut<V>>::new(initial.clone()),
                    )
                    .bulk_guard(i, self.n, self.shards, guard_replicas, guard_coded)
                    .bulk_retention(self.bulk_retain);
                    if let Some(period) = self.anti_entropy {
                        node = node.self_healing(servers.clone(), heal_k, period);
                    }
                    sim.add_node_at(s, node)
                }
            }
        }
        for (i, &c) in clients.iter().enumerate() {
            let owned = if i < self.writers {
                router.shards_of_writer(i)
            } else {
                Vec::new()
            };
            sim.add_node_at(
                c,
                StoreClientNode::<V>::new(
                    cfg,
                    router,
                    servers.clone(),
                    clients.clone(),
                    &owned,
                    self.wsn_modulus,
                    self.plane,
                )
                .batch_window(self.batch_window)
                .adaptive_batch(self.adaptive_batch),
            );
        }
        install_garbage_gen(&mut sim, initial, self.shards);
        StoreSystem {
            sim,
            clients,
            servers,
            table: RoutingTable::initial(router),
            config: snapshot,
            settle_horizon: self.settle_horizon,
            byz_servers: byz_set,
            log: StoreLog::new(),
            latency: BTreeMap::new(),
            monitor: self.monitor.then(|| ConsistencyMonitor::with_initial(None)),
            reshard: None,
        }
    }

    /// Builds the same fleet as [`StoreBuilder::build`] — same node types,
    /// same process-id assignment (clients `0..writers+extra_readers`,
    /// then servers), same Byzantine slots — but **runtime-detached**:
    /// instead of installing the nodes into the simulator it returns them
    /// as boxed [`Node`]s for a thread or socket runtime
    /// (`ThreadRuntime::spawn`, `sbs-net`) to host. The simulator-only
    /// fault hooks (link garbage, scheduled corruption) do not apply.
    ///
    /// # Panics
    ///
    /// Panics on any cross-knob inconsistency (see
    /// [`StoreBuilder::config`]).
    pub fn build_nodes<V: Payload + BulkCodec + Send + Sync>(&self) -> StoreNodeSet<V> {
        let cfg = self.register_config();
        let snapshot = self.snapshot(cfg);
        let router = KeyRouter::new(self.shards, self.writers as u32);
        let clients: Vec<ProcessId> = (0..self.writers + self.extra_readers)
            .map(|i| ProcessId(i as u32))
            .collect();
        let base = clients.len() as u32;
        let servers: Vec<ProcessId> = (0..self.n).map(|i| ProcessId(base + i as u32)).collect();
        let initial: StorePayload<V> =
            SeqVal::new(RingSeq::zero(self.wsn_modulus), StoreVal::empty());
        let (guard_replicas, guard_coded) = match self.plane {
            DataPlane::Full => (0, false),
            DataPlane::Bulk { replicas } => (replicas, false),
            DataPlane::Coded { replicas, .. } => (replicas, true),
        };
        let mut nodes: Vec<Box<dyn Node<Msg = StoreWire<V>, Out = StoreOut<V>> + Send>> =
            Vec::with_capacity(clients.len() + servers.len());
        for (i, _) in clients.iter().enumerate() {
            let owned = if i < self.writers {
                router.shards_of_writer(i)
            } else {
                Vec::new()
            };
            nodes.push(Box::new(
                StoreClientNode::<V>::new(
                    cfg,
                    router,
                    servers.clone(),
                    clients.clone(),
                    &owned,
                    self.wsn_modulus,
                    self.plane,
                )
                .batch_window(self.batch_window)
                .adaptive_batch(self.adaptive_batch),
            ));
        }
        let heal_k = match self.plane {
            DataPlane::Coded { k, .. } => k,
            DataPlane::Full | DataPlane::Bulk { .. } => 1,
        };
        for i in 0..self.n {
            match self.byz.iter().find(|(bi, _)| *bi == i) {
                Some((_, strat)) => {
                    let mut node =
                        StoreServerNode::new(ByzServerNode::<StorePayload<V>, StoreOut<V>>::new(
                            strat.clone(),
                            initial.clone(),
                        ))
                        .bulk_guard(i, self.n, self.shards, guard_replicas, guard_coded)
                        .bulk_retention(self.bulk_retain)
                        .byzantine_bulk();
                    if let Some(period) = self.anti_entropy {
                        node = node.self_healing(servers.clone(), heal_k, period);
                    }
                    nodes.push(Box::new(node))
                }
                None => {
                    let mut node = StoreServerNode::new(
                        ServerNode::<StorePayload<V>, StoreOut<V>>::new(initial.clone()),
                    )
                    .bulk_guard(i, self.n, self.shards, guard_replicas, guard_coded)
                    .bulk_retention(self.bulk_retain);
                    if let Some(period) = self.anti_entropy {
                        node = node.self_healing(servers.clone(), heal_k, period);
                    }
                    nodes.push(Box::new(node))
                }
            }
        }
        StoreNodeSet {
            nodes,
            clients,
            servers,
            router,
            config: snapshot,
            wsn_modulus: self.wsn_modulus,
            seed: self.seed,
            monitor: self.monitor,
        }
    }
}

/// A runtime-detached fleet from [`StoreBuilder::build_nodes`]: the boxed
/// node state machines plus the deployment facts a hosting runtime needs
/// (id layout, routing, config, seed). `nodes[i]` is the node addressed
/// as `ProcessId(i)` — clients first, then servers, matching the
/// simulator's id assignment so differential runs line up.
pub struct StoreNodeSet<V: Payload> {
    /// The node state machines, indexed by process id.
    pub nodes: Vec<Box<dyn Node<Msg = StoreWire<V>, Out = StoreOut<V>> + Send>>,
    /// Client process ids (`writers` first, then extra readers).
    pub clients: Vec<ProcessId>,
    /// Server process ids.
    pub servers: Vec<ProcessId>,
    /// The key→shard→writer routing table.
    pub router: KeyRouter,
    /// The frozen deployment snapshot.
    pub config: StoreConfig,
    /// The write-sequence-number ring modulus (a codec needs it to
    /// validate decoded sequence numbers).
    pub wsn_modulus: u128,
    /// The builder's seed, for the hosting runtime's per-node RNG streams.
    pub seed: u64,
    /// Whether the builder asked for an online consistency monitor.
    pub monitor: bool,
}

impl<V: Payload> std::fmt::Debug for StoreNodeSet<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreNodeSet")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Arms the garbage generator: arbitrary initial link contents are batches
/// of fabricated protocol messages over random shards — or fabricated
/// bulk-plane transfers, whose forged digests the verified blob stores
/// and the client-side digest check must reject.
fn install_garbage_gen<V: Payload + BulkCodec>(
    sim: &mut Simulation<StoreWire<V>, StoreOut<V>>,
    template: StorePayload<V>,
    shards: u32,
) {
    sim.set_garbage_gen(move |rng: &mut DetRng, _from, _to| {
        let mut val = template.clone();
        val.scramble(rng);
        let shard = (rng.next_u64() % shards as u64) as u32;
        let reg = RegId(shard);
        let msg = match rng.next_u64() % 9 {
            0 => RegMsg::Write {
                reg,
                tag: rng.next_u64(),
                val,
            },
            1 => RegMsg::Read {
                reg,
                tag: rng.next_u64(),
                new_read: rng.chance(0.5),
            },
            2 => RegMsg::SsAck {
                tag: rng.next_u64(),
            },
            3 => RegMsg::AckWrite {
                reg,
                helping: vec![(ProcessId(0), Some(val))],
            },
            4 => RegMsg::AckRead {
                reg,
                last: val,
                helping: None,
            },
            5 => {
                // Forged blob push: bytes that (almost surely) do not
                // match the announced digest.
                let mut fake = BulkRef::to_bytes(b"");
                Payload::scramble(&mut fake, rng);
                return StoreMsg::BulkPut {
                    shard,
                    digest: fake.digest,
                    bytes: (0..(rng.next_u64() % 32))
                        .map(|_| rng.next_u64() as u8)
                        .collect::<Vec<u8>>()
                        .into(),
                };
            }
            6 => {
                // Forged fetch reply with garbage bytes and tag.
                let mut fake = BulkRef::to_bytes(b"");
                Payload::scramble(&mut fake, rng);
                return StoreMsg::BulkGetAck {
                    shard,
                    digest: fake.digest,
                    tag: rng.next_u64(),
                    bytes: rng.chance(0.5).then(|| {
                        (0..(rng.next_u64() % 32))
                            .map(|_| rng.next_u64() as u8)
                            .collect::<Vec<u8>>()
                            .into()
                    }),
                };
            }
            7 => {
                // Forged fragment push: a Merkle path of random digests
                // that (almost surely) does not authenticate the bytes —
                // the replica-side commitment replay must refuse it.
                let mut fake = BulkRef::to_bytes(b"");
                Payload::scramble(&mut fake, rng);
                let mut sib = BulkRef::to_bytes(b"");
                Payload::scramble(&mut sib, rng);
                return StoreMsg::FragPut {
                    shard,
                    root: fake.digest,
                    index: (rng.next_u64() % 4) as u32,
                    total: 3,
                    bytes: (0..(rng.next_u64() % 32))
                        .map(|_| rng.next_u64() as u8)
                        .collect::<Vec<u8>>()
                        .into(),
                    proof: vec![sib.digest],
                };
            }
            _ => {
                // Forged fragment reply: garbage index, bytes, and proof
                // under a random root and tag — the client-side
                // verification must count it bad (or ignore its stale
                // tag), never feed it to reconstruction.
                let mut fake = BulkRef::to_bytes(b"");
                Payload::scramble(&mut fake, rng);
                let mut sib = BulkRef::to_bytes(b"");
                Payload::scramble(&mut sib, rng);
                return StoreMsg::FragGetAck {
                    shard,
                    root: fake.digest,
                    tag: rng.next_u64(),
                    frag: rng.chance(0.7).then(|| {
                        (
                            (rng.next_u64() % 4) as u32,
                            (0..(rng.next_u64() % 32))
                                .map(|_| rng.next_u64() as u8)
                                .collect::<Vec<u8>>()
                                .into(),
                            vec![sib.digest],
                        )
                    }),
                };
            }
        };
        StoreMsg::Batch(vec![msg])
    });
}

/// What one completed store operation did to its key.
#[derive(Clone, Debug)]
struct KeyedRecord<V> {
    key: String,
    record: OpRecord<Option<V>>,
}

/// Store operation bookkeeping: invocation intervals plus the key each
/// operation touched, so per-key histories can be extracted.
#[derive(Debug)]
struct StoreLog<V> {
    next_op: u64,
    invoked: HashMap<OpId, (ProcessId, SimTime, String, Option<V>)>,
    completed: Vec<KeyedRecord<V>>,
}

impl<V: Payload> StoreLog<V> {
    fn new() -> Self {
        StoreLog {
            next_op: 0,
            invoked: HashMap::new(),
            completed: Vec::new(),
        }
    }

    fn fresh(&mut self, client: ProcessId, now: SimTime, key: &str, put_val: Option<V>) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        self.invoked
            .insert(op, (client, now, key.to_string(), put_val));
        op
    }

    /// Records the completion; returns `(kind, shard, latency_ns)` for
    /// the latency histograms (`None` on a duplicate completion).
    fn complete(
        &mut self,
        op: OpId,
        at: SimTime,
        read_value: Option<Option<V>>,
        router: &KeyRouter,
    ) -> Option<(&'static str, u32, u64)> {
        let Some((client, invoked, key, put_val)) = self.invoked.remove(&op) else {
            return None; // duplicate completion after corruption — ignore
        };
        let kind_name = if put_val.is_some() { "put" } else { "get" };
        let shard = router.shard_of(&key);
        let latency_ns = at.as_nanos().saturating_sub(invoked.as_nanos());
        let kind = match put_val {
            Some(v) => OpKind::Write(Some(v)),
            None => OpKind::Read(read_value.expect("get completion carries a value")),
        };
        self.completed.push(KeyedRecord {
            key,
            record: OpRecord {
                client,
                op,
                invoked,
                responded: at,
                kind,
            },
        });
        Some((kind_name, shard, latency_ns))
    }
}

/// One live shard handoff, tracked from [`StoreSystem::begin_reshard`]
/// until every migrating shard has been adopted by its new owner. The
/// harness is the *orchestrator* role of the dual-commit protocol: it
/// observes the control events the clients emit and gates each step on
/// the previous one, so the new owner's adoption read never races the
/// old owner's final publish.
#[derive(Debug)]
struct ReshardInFlight {
    /// The migrating shards as `(shard, old_writer, new_writer)`.
    moves: Vec<(u32, u32, u32)>,
    /// Shards whose old owner has not yet emitted `ShardRetired`.
    awaiting_retire: BTreeSet<u32>,
    /// Whether the coordinator's `EpochCommitted` has been observed.
    committed: bool,
    /// Whether the acquire step has been issued to the new owners (it
    /// is gated on all retires *and* the commit).
    acquires_issued: bool,
    /// Shards whose new owner has emitted `ShardAcquired`.
    acquired: BTreeSet<u32>,
}

/// A running store deployment.
#[derive(Debug)]
pub struct StoreSystem<V: Payload + BulkCodec> {
    /// The underlying simulation (exposed for custom scheduling).
    pub sim: Simulation<StoreWire<V>, StoreOut<V>>,
    /// All clients: the `writers` shard owners first, then the read-only
    /// clients.
    pub clients: Vec<ProcessId>,
    /// The shared server fleet.
    pub servers: Vec<ProcessId>,
    table: RoutingTable,
    config: StoreConfig,
    settle_horizon: SimDuration,
    byz_servers: BTreeSet<usize>,
    log: StoreLog<V>,
    /// Completed-op latency histograms keyed by op kind × shard, fed as
    /// completions are drained.
    latency: BTreeMap<(&'static str, u32), LatencyHistogram>,
    /// The online atomicity monitor over `Option<V>` (`None` = key
    /// absent), fed at invoke/drain time; `None` when not enabled.
    monitor: Option<ConsistencyMonitor<Option<V>>>,
    /// The in-flight shard handoff, if a reshard is underway.
    reshard: Option<ReshardInFlight>,
}

impl<V: Payload + BulkCodec> StoreSystem<V> {
    /// The static key→shard hash base the routing table is built on.
    pub fn router(&self) -> &KeyRouter {
        self.table.base()
    }

    /// The epoch-versioned routing table in force. New puts route by it
    /// the moment [`StoreSystem::begin_reshard`] flips it — the handoff
    /// window stages them at the incoming owner.
    pub fn routing_table(&self) -> &RoutingTable {
        &self.table
    }

    /// The validated configuration snapshot this store was built with:
    /// mode (and derived timeout), data plane, sharding shape, and the
    /// per-mode quorum sizes.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Number of writer clients.
    pub fn writers(&self) -> usize {
        self.config.writers
    }

    /// The data plane this store was built with.
    pub fn plane(&self) -> DataPlane {
        self.config.plane
    }

    /// Invokes `put(key, val)` on the shard's owning writer (per the
    /// router). Values must be unique per key across the run so the
    /// checkers can identify which write a read observed.
    pub fn put(&mut self, key: &str, val: V) -> OpId {
        let w = self.table.writer_of(key);
        let client = self.clients[w];
        let now = self.sim.now();
        let op = self.log.fresh(client, now, key, Some(val.clone()));
        if let Some(m) = &mut self.monitor {
            m.op_invoked(op.0, key, now.as_nanos(), Some(Some(val.clone())));
        }
        let key = key.to_string();
        self.sim
            .with_node::<StoreClientNode<V>, _>(client, |n, ctx| n.invoke_put(op, key, val, ctx));
        op
    }

    /// Invokes `get(key)` at client `client_idx` (any client may read any
    /// key).
    pub fn get(&mut self, client_idx: usize, key: &str) -> OpId {
        let client = self.clients[client_idx];
        let now = self.sim.now();
        let op = self.log.fresh(client, now, key, None);
        if let Some(m) = &mut self.monitor {
            m.op_invoked(op.0, key, now.as_nanos(), None);
        }
        let key = key.to_string();
        self.sim
            .with_node::<StoreClientNode<V>, _>(client, |n, ctx| n.invoke_get(op, key, ctx));
        op
    }

    /// Runs until the event queue drains (or the settle horizon passes —
    /// see [`StoreBuilder::settle_horizon`]), then records completions.
    /// Returns `true` on quiescence.
    ///
    /// A reshard in flight re-arms the event queue from the harness side
    /// (draining control events is what releases the gated acquire
    /// step), so settling loops until the handoff completes too — a
    /// handoff that stops making progress reports non-quiescence rather
    /// than spinning.
    pub fn settle(&mut self) -> bool {
        let mut prev: Option<(bool, bool, usize, usize)> = None;
        loop {
            let quiet = self
                .sim
                .run_until_quiescent(self.sim.now() + self.settle_horizon);
            self.drain();
            if !quiet {
                return false;
            }
            let Some(r) = &self.reshard else { return true };
            let state = (
                r.committed,
                r.acquires_issued,
                r.awaiting_retire.len(),
                r.acquired.len(),
            );
            if prev == Some(state) {
                return false; // quiescent but the handoff is wedged
            }
            prev = Some(state);
        }
    }

    /// Runs for `d` of virtual time, then records completions. Returns the
    /// completions of this slice as `(client process, operation)` pairs —
    /// closed-loop drivers use them to refill clients.
    pub fn run_for(&mut self, d: SimDuration) -> Vec<(ProcessId, OpId)> {
        self.sim.run_for(d);
        self.drain()
    }

    /// Records completions emitted so far; returns `(client process,
    /// operation)` per completion, in completion order — the hook
    /// closed-loop workload drivers use to refill clients.
    pub fn drain(&mut self) -> Vec<(ProcessId, OpId)> {
        let mut done = Vec::new();
        for (at, pid, out) in self.sim.take_outputs() {
            let completed = match out {
                StoreOut::PutDone { op } => {
                    done.push((pid, op));
                    if let Some(m) = &mut self.monitor {
                        m.op_completed(op.0, at.as_nanos(), None);
                    }
                    self.log.complete(op, at, None, self.table.base())
                }
                StoreOut::GetDone { op, value } => {
                    done.push((pid, op));
                    if let Some(m) = &mut self.monitor {
                        m.op_completed(op.0, at.as_nanos(), Some(value.clone()));
                    }
                    self.log.complete(op, at, Some(value), self.table.base())
                }
                // Dual-commit control events: they advance the handoff
                // state machine, never the op log, monitor, or latency
                // books (they are not client operations).
                StoreOut::ShardRetired { shard } => {
                    if let Some(r) = &mut self.reshard {
                        r.awaiting_retire.remove(&shard);
                    }
                    None
                }
                StoreOut::EpochCommitted { .. } => {
                    if let Some(r) = &mut self.reshard {
                        r.committed = true;
                    }
                    None
                }
                StoreOut::ShardAcquired { shard } => {
                    if let Some(r) = &mut self.reshard {
                        r.acquired.insert(shard);
                    }
                    None
                }
            };
            if let Some((kind, shard, latency_ns)) = completed {
                self.latency
                    .entry((kind, shard))
                    .or_default()
                    .record(latency_ns);
            }
        }
        self.advance_reshard();
        done
    }

    /// Progresses the in-flight handoff: once every retiring owner has
    /// published its final map and the epoch flip is committed through
    /// the quorum, the new owners are told to adopt their shards; once
    /// every adoption has republished, the handoff is over.
    fn advance_reshard(&mut self) {
        let Some(r) = &mut self.reshard else { return };
        if !r.acquires_issued && r.committed && r.awaiting_retire.is_empty() {
            r.acquires_issued = true;
            let moves = r.moves.clone();
            for (shard, _, new) in moves {
                let c = self.clients[new as usize];
                self.sim
                    .with_node::<StoreClientNode<V>, _>(c, move |n, ctx| {
                        n.acquire_shard(shard, ctx)
                    });
            }
        }
        let Some(r) = &self.reshard else { return };
        if r.acquires_issued && r.moves.iter().all(|&(s, _, _)| r.acquired.contains(&s)) {
            self.reshard = None;
        }
    }

    /// Starts a live reshard: applies `plan` to the routing table and
    /// kicks off the dual-commit handoff for every shard whose owner
    /// changes. New puts route by the next epoch immediately — the
    /// incoming owner stages them until it has adopted the shard — while
    /// each outgoing owner drains its queue, publishes one final time,
    /// and retires. The epoch itself is committed as a register write
    /// through the dedicated routing register by the first move's new
    /// owner (or the first writer, for a plan that changes no
    /// ownership). Drive the simulation (`settle` / `run_for`) until
    /// [`StoreSystem::reshard_active`] reports `false`.
    ///
    /// The reshard is stamped as a fault, so
    /// [`StoreSystem::stabilization_time`] measures how long the history
    /// takes to provably stabilize after the flip.
    ///
    /// # Panics
    ///
    /// Panics if a reshard is already in flight or the plan is invalid
    /// for the current table (unknown shard, writer out of range, or a
    /// shard moved twice).
    pub fn begin_reshard(&mut self, plan: &ReshardPlan) {
        assert!(
            self.reshard.is_none(),
            "a reshard is already in flight — settle it before the next plan"
        );
        let next = self.table.apply(plan).unwrap_or_else(|e| {
            panic!("invalid reshard plan: {e}");
        });
        let moves = self.table.moves_to(&next);
        let coordinator = self.clients[moves.first().map(|&(_, _, new)| new as usize).unwrap_or(0)];
        self.sim.record_fault(coordinator, "reshard");
        for &(shard, old, new) in &moves {
            let old_c = self.clients[old as usize];
            let new_c = self.clients[new as usize];
            self.sim
                .with_node::<StoreClientNode<V>, _>(old_c, move |n, ctx| {
                    n.retire_shard(shard, ctx)
                });
            self.sim
                .with_node::<StoreClientNode<V>, _>(new_c, move |n, _| n.grant_shard(shard));
        }
        let (epoch, owners) = (next.epoch(), next.owners().to_vec());
        self.sim
            .with_node::<StoreClientNode<V>, _>(coordinator, move |n, ctx| {
                n.commit_epoch(epoch, owners, ctx)
            });
        self.reshard = Some(ReshardInFlight {
            awaiting_retire: moves.iter().map(|&(s, _, _)| s).collect(),
            moves,
            committed: false,
            acquires_issued: false,
            acquired: BTreeSet::new(),
        });
        self.table = next;
    }

    /// True while a shard handoff started by
    /// [`StoreSystem::begin_reshard`] is still in flight.
    pub fn reshard_active(&self) -> bool {
        self.reshard.is_some()
    }

    /// The completed-op latency histogram of `kind` (`"put"` / `"get"`)
    /// on `shard`, if any such operation completed.
    pub fn latency_histogram(&self, kind: &str, shard: u32) -> Option<&LatencyHistogram> {
        self.latency.get(&(
            match kind {
                "put" => "put",
                "get" => "get",
                _ => return None,
            },
            shard,
        ))
    }

    /// All per-(kind, shard) latency summaries, sorted by kind then shard.
    pub fn latency_summaries(&self) -> Vec<(&'static str, u32, LatencySummary)> {
        self.latency
            .iter()
            .filter_map(|(&(kind, shard), h)| h.summary().map(|s| (kind, shard, s)))
            .collect()
    }

    /// The latency population of `kind` merged across every shard (empty
    /// histogram if no such operation completed).
    pub fn merged_latency(&self, kind: &str) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for ((k, _), h) in &self.latency {
            if *k == kind {
                merged.merge(h);
            }
        }
        merged
    }

    /// The simulation's protocol tracer (disabled unless the store was
    /// built with [`StoreBuilder::trace`]).
    pub fn tracer(&self) -> &sbs_sim::Tracer {
        self.sim.tracer()
    }

    /// The online atomicity monitor, if the store was built with
    /// [`StoreBuilder::monitor`]. Completions reach the monitor when
    /// they are drained — run [`StoreSystem::settle`] /
    /// [`StoreSystem::drain`] before reading verdicts.
    pub fn monitor(&self) -> Option<&ConsistencyMonitor<Option<V>>> {
        self.monitor.as_ref()
    }

    /// The atomicity violations flagged so far (empty when the monitor
    /// is off or the run is clean). Each names the violating operation,
    /// its sim-time, and the culprit op set.
    pub fn monitor_violations(&self) -> &[Violation] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    /// `(pid, role)` names for every process in the deployment —
    /// `client-N` in client order, then `server-N` in fleet order. Used
    /// to label Chrome trace exports (pass to
    /// [`Tracer::to_chrome_trace_named`](sbs_sim::Tracer)).
    pub fn role_names(&self) -> Vec<(u32, String)> {
        self.clients
            .iter()
            .enumerate()
            .map(|(i, c)| (c.0, format!("client-{i}")))
            .chain(
                self.servers
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.0, format!("server-{i}"))),
            )
            .collect()
    }

    /// Assembles a point-in-time health snapshot: per-shard completed-op
    /// tallies (with the hot-shard detector), per-replica message
    /// traffic, slow-path counters, pending-op count, and per-plane byte
    /// totals. Cheap — reads existing counters, simulates nothing.
    pub fn health(&self) -> StoreHealth {
        let mut shards: BTreeMap<u32, ShardHealth> = (0..self.config.shards)
            .map(|shard| {
                (
                    shard,
                    ShardHealth {
                        shard,
                        puts: 0,
                        gets: 0,
                    },
                )
            })
            .collect();
        for ((kind, shard), h) in &self.latency {
            let entry = shards.entry(*shard).or_insert(ShardHealth {
                shard: *shard,
                puts: 0,
                gets: 0,
            });
            match *kind {
                "put" => entry.puts += h.count(),
                _ => entry.gets += h.count(),
            }
        }
        let m = self.sim.metrics();
        let replicas = self
            .servers
            .iter()
            .enumerate()
            .map(|(i, &s)| ReplicaHealth {
                server: i,
                pid: s.0,
                msgs_in: self.clients.iter().map(|&c| m.sent_on_link(c, s)).sum(),
                msgs_out: self.clients.iter().map(|&c| m.sent_on_link(s, c)).sum(),
            })
            .collect();
        let mut health = StoreHealth {
            shards: shards.into_values().collect(),
            replicas,
            slow: m.slow_paths,
            pending_ops: self.log.invoked.len(),
            hot_shards: Vec::new(),
            metadata_bytes_sent: m.metadata_bytes_sent,
            bulk_bytes_sent: m.bulk_bytes_sent,
        };
        health.detect_hot_shards();
        health
    }

    /// **Load-driven rebalancing**: turns [`StoreSystem::health`]'s
    /// hot-shard signal into a [`ReshardPlan`] that dedicates a writer
    /// to the hottest shard — every *other* shard co-resident on that
    /// writer migrates to the least-loaded writer. Returns `None` when
    /// no shard is hot, the hot shard already has a dedicated writer,
    /// or there is no other writer to take the load. The caller decides
    /// when to [`StoreSystem::begin_reshard`] the proposal.
    pub fn propose_rebalance(&self) -> Option<ReshardPlan> {
        let health = self.health();
        let &hot = health.hot_shards.first()?;
        let owner = self.table.writer_of_shard(hot);
        let siblings: Vec<u32> = self
            .table
            .shards_of_writer(owner)
            .into_iter()
            .filter(|&s| s != hot)
            .collect();
        if siblings.is_empty() {
            return None;
        }
        let mut load = vec![0u64; self.table.writers() as usize];
        for ((_, shard), h) in &self.latency {
            load[self.table.writer_of_shard(*shard)] += h.count();
        }
        let (target, _) = load
            .iter()
            .enumerate()
            .filter(|&(w, _)| w != owner)
            .min_by_key(|&(_, &l)| l)?;
        let mut plan = ReshardPlan::default();
        for s in siblings {
            plan = plan.and_migrate(s, target as u32);
        }
        Some(plan)
    }

    /// Dumps the flight recorder: the causal slice of the trace ring
    /// leading to the suspect operations — the monitor's violating ops
    /// when violations exist, otherwise every still-pending (possibly
    /// timed-out) operation. Non-empty slices need the deployment built
    /// with [`StoreBuilder::trace`] (the slice is cut from the ring) —
    /// without tracing the dump carries the seeds and violations alone.
    pub fn flight_recorder(&self) -> FlightRecord {
        let violations = self.monitor_violations().to_vec();
        let seed_ops: Vec<u64> = if violations.is_empty() {
            let mut pending: Vec<u64> = self.log.invoked.keys().map(|op| op.0).collect();
            pending.sort_unstable();
            pending
        } else {
            let mut ops: Vec<u64> = violations
                .iter()
                .flat_map(|v| v.culprits.iter().copied().chain([v.op]))
                .collect();
            ops.sort_unstable();
            ops.dedup();
            ops
        };
        let records: Vec<sbs_sim::TraceRecord> = self.tracer().records().copied().collect();
        FlightRecord {
            records: sbs_sim::causal_slice(&records, &seed_ops),
            seed_ops,
            violations,
            names: self.role_names(),
        }
    }

    /// Sim-time from the run's **last fault injection** (corruption, link
    /// garbage, or link wipe) to the point the completed history is
    /// provably clean again: the latest per-key atomic stabilization
    /// point over every touched key, minus the fault time (clamped at
    /// zero if the history stabilized before the fault landed).
    ///
    /// `None` when no fault was injected, when any touched key's history
    /// has no atomic suffix yet (not yet stabilized), or when a key's
    /// history is too tangled to judge. Drain completions (e.g. via
    /// [`StoreSystem::settle`]) before asking.
    pub fn stabilization_time(&self) -> Option<SimDuration> {
        let fault = self.sim.last_fault_at()?;
        let mut latest_point = SimTime::ZERO;
        for key in self.keys_touched() {
            let h = self.history_for_key(&key);
            let point = atomic_stabilization_point(&h).ok().flatten()?;
            latest_point = latest_point.max(point);
        }
        Some(SimDuration::nanos(
            latest_point.as_nanos().saturating_sub(fault.as_nanos()),
        ))
    }

    /// Operations invoked but not yet completed.
    pub fn pending_ops(&self) -> usize {
        self.log.invoked.len()
    }

    /// Completed operations so far.
    pub fn completed_ops(&self) -> usize {
        self.log.completed.len()
    }

    /// Every completed operation's id, in completion order (ties broken
    /// by emission order — which is what the batching guarantees pin).
    pub fn completion_order(&self) -> Vec<OpId> {
        self.log.completed.iter().map(|r| r.record.op).collect()
    }

    /// Every key touched by a completed operation.
    pub fn keys_touched(&self) -> BTreeSet<String> {
        self.log.completed.iter().map(|r| r.key.clone()).collect()
    }

    /// The extracted history of one key: its puts as writes, its gets as
    /// reads (`None` = key absent). Judged independently per key — the
    /// store's correctness claim is per-key regularity/atomicity.
    pub fn history_for_key(&self, key: &str) -> History<Option<V>> {
        History::new(
            self.log
                .completed
                .iter()
                .filter(|r| r.key == key)
                .map(|r| r.record.clone())
                .collect(),
        )
    }

    /// Checks every touched key's history for register linearizability
    /// (initial state: absent). Returns the offending key and diagnosis on
    /// failure.
    ///
    /// Intended for closed-loop histories, whose concurrency is bounded by
    /// the client count. Open-loop runs queue operations at the clients,
    /// so a backlogged client's operations all overlap — the exact search
    /// then has no quiescent points to divide at and can blow up (or
    /// return [`LinError::SegmentTooLarge`](sbs_check::LinError)); judge
    /// such runs with `sbs_check::check_regularity` per key instead.
    pub fn check_per_key_atomicity(&self) -> Result<usize, String> {
        let mut checked = 0;
        for key in self.keys_touched() {
            let h = self.history_for_key(&key);
            h.validate_unique_writes()
                .map_err(|e| format!("key {key}: {e}"))?;
            let initial = InitialState::OneOf(std::iter::once(None).collect());
            let rep = check_linearizable(&h, &initial).map_err(|e| format!("key {key}: {e}"))?;
            if !rep.linearizable {
                return Err(format!(
                    "key {key}: history not linearizable (failed segment {:?}) — {h:?}",
                    rep.failed_segment
                ));
            }
            checked += 1;
        }
        Ok(checked)
    }

    /// Applies a transient fault to server `i` *now*.
    pub fn corrupt_server(&mut self, i: usize) {
        let now = self.sim.now();
        let s = self.servers[i];
        self.sim.schedule_corruption(now, s);
    }

    /// Wipes server `i`'s blob **and** fragment stores *now* — the
    /// data-loss fault the self-healing plane
    /// ([`StoreBuilder::anti_entropy`]) repairs without writer
    /// involvement. Register (metadata) state is untouched; retention
    /// bounds survive. The fault is stamped, so
    /// [`StoreSystem::stabilization_time`] measures recovery from it.
    pub fn wipe_server_data(&mut self, i: usize) {
        type Correct<V> =
            StoreServerNode<StorePayload<V>, ServerNode<StorePayload<V>, StoreOut<V>>>;
        type Byz<V> = StoreServerNode<StorePayload<V>, ByzServerNode<StorePayload<V>, StoreOut<V>>>;
        let pid = self.servers[i];
        if self.byz_servers.contains(&i) {
            self.sim
                .with_node::<Byz<V>, _>(pid, |n, _| n.wipe_data_stores());
        } else {
            self.sim
                .with_node::<Correct<V>, _>(pid, |n, _| n.wipe_data_stores());
        }
        self.sim.record_fault(pid, "data-wipe");
    }

    /// Applies a transient fault to client `i` *now* — including a shard
    /// owner, whose authoritative map is scrambled and then repaired by
    /// the writer-map recovery rule (re-read own register, republish)
    /// before its next put.
    pub fn corrupt_client(&mut self, i: usize) {
        let now = self.sim.now();
        let c = self.clients[i];
        self.sim.schedule_corruption(now, c);
    }

    /// Applies a transient fault to every server *now*.
    pub fn corrupt_all_servers(&mut self) {
        let now = self.sim.now();
        for s in self.servers.clone() {
            self.sim.schedule_corruption(now, s);
        }
    }

    /// Injects `count` garbage batches into every client⇄server link *now*.
    pub fn pollute_links(&mut self, count: usize) {
        self.pollute_links_at(self.sim.now(), count);
    }

    /// Schedules `count` garbage batches on every client⇄server link at
    /// absolute time `at` (fault plans schedule these upfront, exactly).
    pub fn pollute_links_at(&mut self, at: SimTime, count: usize) {
        for s in self.servers.clone() {
            for c in self.clients.clone() {
                self.sim.schedule_link_garbage(at, c, s, count);
                self.sim.schedule_link_garbage(at, s, c, count);
            }
        }
    }

    /// Queued + in-flight operations at client `i`.
    pub fn client_backlog(&mut self, i: usize) -> usize {
        let pid = self.clients[i];
        self.sim
            .node_ref::<StoreClientNode<V>, _>(pid, |n| n.backlog())
    }

    /// Writer-map recoveries (re-read + republish after transient
    /// corruption) completed by client `i`.
    pub fn client_recoveries(&mut self, i: usize) -> u64 {
        let pid = self.clients[i];
        self.sim
            .node_ref::<StoreClientNode<V>, _>(pid, |n| n.recoveries())
    }

    /// Runs `f` against server `i`'s bulk stores — whole blobs and coded
    /// fragments (dispatching on the concrete wrapper type, which
    /// differs for Byzantine slots).
    fn with_server_bulk<R>(
        &mut self,
        i: usize,
        f: impl FnOnce(&BulkStore, &FragmentStore) -> R,
    ) -> R {
        type Correct<V> =
            StoreServerNode<StorePayload<V>, ServerNode<StorePayload<V>, StoreOut<V>>>;
        type Byz<V> = StoreServerNode<StorePayload<V>, ByzServerNode<StorePayload<V>, StoreOut<V>>>;
        let pid = self.servers[i];
        if self.byz_servers.contains(&i) {
            self.sim
                .node_ref::<Byz<V>, _>(pid, |n| f(n.bulk(), n.frag_store()))
        } else {
            self.sim
                .node_ref::<Correct<V>, _>(pid, |n| f(n.bulk(), n.frag_store()))
        }
    }

    /// Which server indices hold bulk payload (whole blobs or coded
    /// fragments) for each shard — the placement the `2t + 1` windows
    /// promise. Empty under full replication.
    pub fn bulk_placement(&mut self) -> BTreeMap<u32, BTreeSet<usize>> {
        let mut placement: BTreeMap<u32, BTreeSet<usize>> = BTreeMap::new();
        for i in 0..self.servers.len() {
            let held = self.with_server_bulk(i, |b, fr| {
                let mut s = b.shards_held();
                s.extend(fr.shards_held());
                s
            });
            for shard in held {
                placement.entry(shard).or_default().insert(i);
            }
        }
        placement
    }

    /// Total bulk payload bytes stored on server `i` (whole blobs plus
    /// coded fragments) — the per-replica storage footprint the coded
    /// mode cuts by ~`k`×.
    pub fn bulk_bytes_stored(&mut self, i: usize) -> u64 {
        self.with_server_bulk(i, |b, fr| b.bytes_stored() + fr.bytes_stored())
    }

    /// Number of bulk entries held on server `i` — whole blobs plus
    /// coded fragment sets (bounded by the [`StoreBuilder::bulk_retain`]
    /// window when one is set).
    pub fn bulk_blob_count(&mut self, i: usize) -> usize {
        self.with_server_bulk(i, |b, fr| b.blob_count() + fr.fragment_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_key_put_get_round_trip() {
        let mut sys: StoreSystem<u64> = StoreBuilder::asynchronous(1).seed(7).shards(4).build();
        sys.put("alpha", 11);
        assert!(sys.settle());
        sys.get(0, "alpha");
        sys.get(0, "beta");
        assert!(sys.settle());
        let h = sys.history_for_key("alpha");
        assert_eq!(h.len(), 2);
        let read = h.reads().next().unwrap();
        assert_eq!(read.kind.value(), &Some(11));
        // An unwritten key reads as absent.
        let hb = sys.history_for_key("beta");
        assert_eq!(hb.reads().next().unwrap().kind.value(), &None);
        assert_eq!(sys.check_per_key_atomicity().unwrap(), 2);
        assert_eq!(sys.pending_ops(), 0);
    }

    #[test]
    fn multi_writer_routing_honors_shard_ownership() {
        let mut sys: StoreSystem<u64> = StoreBuilder::asynchronous(1)
            .seed(3)
            .shards(8)
            .writers(4)
            .extra_readers(2)
            .build();
        for i in 0..16u64 {
            sys.put(&format!("key{i}"), 100 + i);
        }
        assert!(sys.settle());
        for i in 0..16u64 {
            // Read each key from a different client, including read-only ones.
            sys.get((i % 6) as usize, &format!("key{i}"));
        }
        assert!(sys.settle());
        assert_eq!(sys.completed_ops(), 32);
        assert_eq!(sys.check_per_key_atomicity().unwrap(), 16);
    }

    #[test]
    fn reshard_migrates_ownership_and_keeps_history_atomic() {
        let mut sys: StoreSystem<u64> = StoreBuilder::asynchronous(1)
            .seed(9)
            .shards(4)
            .writers(2)
            .build();
        for i in 0..8u64 {
            sys.put(&format!("key{i}"), i);
        }
        assert!(sys.settle());
        // Move every shard writer 1 owns to writer 0.
        let plan = ReshardPlan::merge_writer(sys.routing_table(), 1, 0);
        sys.begin_reshard(&plan);
        assert!(sys.reshard_active());
        // Puts issued mid-handoff route to the new owner and are staged.
        for i in 0..8u64 {
            sys.put(&format!("key{i}"), 100 + i);
        }
        assert!(sys.settle(), "handoff + staged puts must complete");
        assert!(!sys.reshard_active());
        assert_eq!(sys.routing_table().epoch(), 1);
        assert_eq!(sys.routing_table().shards_of_writer(1), Vec::<u32>::new());
        for i in 0..8u64 {
            sys.get((i % 2) as usize, &format!("key{i}"));
        }
        assert!(sys.settle());
        assert_eq!(sys.check_per_key_atomicity().unwrap(), 8);
        // Reads after the flip observe the post-flip writes.
        for i in 0..8u64 {
            let h = sys.history_for_key(&format!("key{i}"));
            assert_eq!(h.reads().next().unwrap().kind.value(), &Some(100 + i));
        }
        // The reshard is stamped as a fault, so stabilization is measured.
        assert!(sys.stabilization_time().is_some());
    }

    #[test]
    fn batching_reduces_delivery_events() {
        let mut sys: StoreSystem<u64> = StoreBuilder::asynchronous(1).seed(5).build();
        sys.put("k", 1);
        assert!(sys.settle());
        let m = sys.sim.metrics();
        // The put runs a WRITE round (9 requests, 9 two-message reply
        // batches) and a NEW_HELP_VAL round (9 requests, 9 acks): 36
        // delivery events. Un-batched, the reply pairs would be separate
        // events — 45 deliveries. Batching must stay below that.
        assert!(m.messages_delivered >= 9 * 4, "both rounds must run");
        assert!(
            m.messages_delivered < 45,
            "un-batched this put would cost 45 delivery events, got {}",
            m.messages_delivered
        );
    }
}
