//! The keyspace router: deterministic hash-sharding of string keys onto
//! register shards, plus the per-shard writer assignment — static
//! ([`KeyRouter`]) and epoch-versioned ([`RoutingTable`]).
//!
//! Every key lives in exactly one **shard**; each shard is one logical
//! register ([`RegId`]) multiplexed over the shared server fleet. Because
//! each shard is an SWMR register (§5.1 of the paper), it has exactly one
//! writer — the router assigns shards to writer clients round-robin, which
//! is what "honoring the SWMR rule" means at the store layer: a `put` is
//! always executed by the owning writer, while any client may `get`.
//!
//! The hash is FNV-1a (64-bit), chosen because it is tiny, dependency-free,
//! and — critically for reproducible experiments — **stable across runs,
//! platforms, and process restarts** (unlike `std`'s randomized `SipHash`).
//!
//! # Live resharding
//!
//! [`RoutingTable`] versions the shard→writer assignment by **epoch**:
//! epoch 0 is bit-identical to the [`KeyRouter`]'s frozen round-robin
//! placement (the compat guarantee `store_checks.rs` pins), and every
//! later epoch is produced by applying a [`ReshardPlan`] — a validated
//! batch of migrate/split/merge ownership moves. The key→shard hash never
//! changes (only *ownership* moves, so no key is ever re-hashed across a
//! flip), and `apply` rejects any plan that would break the exact
//! partition: after every flip each shard still has exactly one owner.
//! The epoch flip itself is committed as a register write of
//! [`RoutingEpoch`] through the metadata quorum (see
//! `StoreSystem::begin_reshard`), so the existing atomicity machinery
//! verifies the flip like any other write.

use sbs_core::RegId;

/// 64-bit FNV-1a over arbitrary bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic key → shard → (register, writer) routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyRouter {
    shards: u32,
    writers: u32,
}

impl KeyRouter {
    /// A router over `shards` register shards owned by `writers` writer
    /// clients (round-robin).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(shards: u32, writers: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(writers >= 1, "need at least one writer");
        KeyRouter { shards, writers }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of writer clients.
    pub fn writers(&self) -> u32 {
        self.writers
    }

    /// The shard a key lives in.
    pub fn shard_of(&self, key: &str) -> u32 {
        (fnv1a64(key.as_bytes()) % self.shards as u64) as u32
    }

    /// The logical register backing a shard.
    pub fn reg_of_shard(&self, shard: u32) -> RegId {
        debug_assert!(shard < self.shards);
        RegId(shard)
    }

    /// The logical register a key lives in.
    pub fn reg_of(&self, key: &str) -> RegId {
        self.reg_of_shard(self.shard_of(key))
    }

    /// The writer-client index owning a shard (round-robin assignment; the
    /// SWMR single-writer rule at the store layer).
    pub fn writer_of_shard(&self, shard: u32) -> usize {
        (shard % self.writers) as usize
    }

    /// The writer-client index that must execute a `put` of this key.
    pub fn writer_of(&self, key: &str) -> usize {
        self.writer_of_shard(self.shard_of(key))
    }

    /// All shards owned by writer `w`.
    pub fn shards_of_writer(&self, w: usize) -> Vec<u32> {
        (0..self.shards)
            .filter(|&s| self.writer_of_shard(s) == w)
            .collect()
    }
}

/// The register-visible value of one routing epoch: the epoch counter plus
/// the full shard→writer ownership vector (`owners[shard] = writer`).
///
/// This is what a reshard coordinator writes into the dedicated routing
/// register (`RegId(shards)`) to commit an epoch flip through the metadata
/// quorum. It is deliberately a plain flat vector — small enough to travel
/// as an inline metadata value on every plane (`4·shards + 12` wire bytes),
/// and self-describing enough that an observer needs no prior epoch to
/// interpret it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoutingEpoch {
    /// Monotone epoch counter; epoch 0 is the frozen build-time placement.
    pub epoch: u64,
    /// `owners[shard]` = writer-client index owning that shard.
    pub owners: Vec<u32>,
}

impl RoutingEpoch {
    /// Exact encoded size of this value inside a `StoreVal::Routing`
    /// payload: epoch (8) + owner count (4) + 4 bytes per owner.
    pub fn encoded_len(&self) -> usize {
        8 + 4 + 4 * self.owners.len()
    }
}

/// A validated batch of ownership moves producing the next routing epoch.
///
/// A plan is a list of `(shard, new_writer)` reassignments. The three
/// classic reshard shapes all lower to per-shard moves:
///
/// * [`ReshardPlan::migrate`] — move one shard to a new writer;
/// * [`ReshardPlan::split_writer`] — offload every other shard of an
///   overloaded writer onto a peer (a "split" of its key range);
/// * [`ReshardPlan::merge_writer`] — fold one writer's shards into
///   another's, draining the source writer entirely.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReshardPlan {
    moves: Vec<(u32, u32)>,
}

impl ReshardPlan {
    /// Plan moving a single shard to writer `to`.
    pub fn migrate(shard: u32, to: u32) -> Self {
        ReshardPlan {
            moves: vec![(shard, to)],
        }
    }

    /// Chain another single-shard move onto this plan.
    pub fn and_migrate(mut self, shard: u32, to: u32) -> Self {
        self.moves.push((shard, to));
        self
    }

    /// Plan splitting writer `w`'s load under `table`: every other shard
    /// currently owned by `w` (the odd-indexed half) moves to writer `to`.
    pub fn split_writer(table: &RoutingTable, w: u32, to: u32) -> Self {
        let moves = table
            .shards_of_writer(w as usize)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, s)| (s, to))
            .collect();
        ReshardPlan { moves }
    }

    /// Plan merging writer `from`'s entire shard set into writer `into`.
    pub fn merge_writer(table: &RoutingTable, from: u32, into: u32) -> Self {
        let moves = table
            .shards_of_writer(from as usize)
            .into_iter()
            .map(|s| (s, into))
            .collect();
        ReshardPlan { moves }
    }

    /// The raw `(shard, new_writer)` reassignments.
    pub fn moves(&self) -> &[(u32, u32)] {
        &self.moves
    }

    /// True if the plan contains no reassignments at all.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Epoch-versioned shard→writer routing.
///
/// Epoch 0 ([`RoutingTable::initial`]) reproduces the static [`KeyRouter`]
/// placement bit for bit: `owners[shard] = shard % writers`. Each call to
/// [`RoutingTable::apply`] validates a [`ReshardPlan`] and produces the
/// next epoch. The key→shard hash is delegated to the embedded
/// [`KeyRouter`] and never changes across epochs — resharding moves
/// *ownership*, never key placement, so no key is orphaned by a flip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingTable {
    base: KeyRouter,
    epoch: u64,
    owners: Vec<u32>,
}

impl RoutingTable {
    /// Epoch 0: bit-identical to `base`'s round-robin writer placement.
    pub fn initial(base: KeyRouter) -> Self {
        let owners = (0..base.shards()).map(|s| s % base.writers()).collect();
        RoutingTable {
            base,
            epoch: 0,
            owners,
        }
    }

    /// The epoch counter of this table.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The shard→writer ownership vector.
    pub fn owners(&self) -> &[u32] {
        self.owners.as_slice()
    }

    /// The embedded static router (key→shard hash + register mapping).
    pub fn base(&self) -> &KeyRouter {
        &self.base
    }

    /// Number of shards (constant across epochs).
    pub fn shards(&self) -> u32 {
        self.base.shards()
    }

    /// Number of writer clients (constant across epochs).
    pub fn writers(&self) -> u32 {
        self.base.writers()
    }

    /// The shard a key lives in (epoch-independent).
    pub fn shard_of(&self, key: &str) -> u32 {
        self.base.shard_of(key)
    }

    /// The writer-client index owning a shard at this epoch.
    pub fn writer_of_shard(&self, shard: u32) -> usize {
        self.owners[shard as usize] as usize
    }

    /// The writer-client index that must execute a `put` of this key at
    /// this epoch.
    pub fn writer_of(&self, key: &str) -> usize {
        self.writer_of_shard(self.shard_of(key))
    }

    /// All shards owned by writer `w` at this epoch.
    pub fn shards_of_writer(&self, w: usize) -> Vec<u32> {
        (0..self.shards())
            .filter(|&s| self.writer_of_shard(s) == w)
            .collect()
    }

    /// Validate `plan` against this epoch and produce the next one.
    ///
    /// Rejects out-of-range shards or writers and duplicate moves of the
    /// same shard; silently drops moves that are no-ops at this epoch
    /// (shard already owned by the target). The result is always an exact
    /// partition — every shard keeps exactly one in-range owner — because
    /// the ownership vector is indexed by shard and only its *values*
    /// change.
    pub fn apply(&self, plan: &ReshardPlan) -> Result<RoutingTable, String> {
        let mut owners = self.owners.clone();
        let mut touched = vec![false; owners.len()];
        for &(shard, to) in plan.moves() {
            if shard >= self.shards() {
                return Err(format!(
                    "reshard plan moves shard {shard} but the table has only {} shards",
                    self.shards()
                ));
            }
            if to >= self.writers() {
                return Err(format!(
                    "reshard plan assigns shard {shard} to writer {to} but only {} writers exist",
                    self.writers()
                ));
            }
            if touched[shard as usize] {
                return Err(format!("reshard plan moves shard {shard} twice"));
            }
            touched[shard as usize] = true;
            owners[shard as usize] = to;
        }
        Ok(RoutingTable {
            base: self.base,
            epoch: self.epoch + 1,
            owners,
        })
    }

    /// The effective ownership moves from this epoch to `next`, as
    /// `(shard, old_writer, new_writer)` triples. No-op plan entries do
    /// not appear.
    pub fn moves_to(&self, next: &RoutingTable) -> Vec<(u32, u32, u32)> {
        assert_eq!(
            self.shards(),
            next.shards(),
            "tables must share a shard count"
        );
        (0..self.shards())
            .filter_map(|s| {
                let (a, b) = (self.owners[s as usize], next.owners[s as usize]);
                (a != b).then_some((s, a, b))
            })
            .collect()
    }

    /// The register-visible value committing this epoch.
    pub fn to_epoch_value(&self) -> RoutingEpoch {
        RoutingEpoch {
            epoch: self.epoch,
            owners: self.owners.clone(),
        }
    }

    /// True iff every shard has exactly one in-range owner (the exact
    /// partition invariant the property tests pin).
    pub fn is_exact_partition(&self) -> bool {
        self.owners.len() == self.shards() as usize
            && self.owners.iter().all(|&w| w < self.writers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_answers() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = KeyRouter::new(8, 4);
        for i in 0..256 {
            let key = format!("key{i}");
            let s = r.shard_of(&key);
            assert!(s < 8);
            assert_eq!(s, r.shard_of(&key), "same key, same shard");
            assert_eq!(r.reg_of(&key), RegId(s));
            assert_eq!(r.writer_of(&key), (s % 4) as usize);
        }
    }

    #[test]
    fn every_shard_has_exactly_one_writer() {
        let r = KeyRouter::new(8, 3);
        let mut owned = [0usize; 8];
        for w in 0..3 {
            for s in r.shards_of_writer(w) {
                owned[s as usize] += 1;
                assert_eq!(r.writer_of_shard(s), w);
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "partition must be exact");
    }

    #[test]
    fn keys_spread_over_shards() {
        let r = KeyRouter::new(8, 2);
        let mut hit = [false; 8];
        for i in 0..64 {
            hit[r.shard_of(&format!("key{i}")) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 keys must touch all 8 shards");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        KeyRouter::new(0, 1);
    }

    #[test]
    fn epoch_zero_is_bit_identical_to_key_router() {
        for (shards, writers) in [(8, 4), (8, 3), (16, 5), (1, 1), (32, 32)] {
            let r = KeyRouter::new(shards, writers);
            let t = RoutingTable::initial(r);
            assert_eq!(t.epoch(), 0);
            for s in 0..shards {
                assert_eq!(t.writer_of_shard(s), r.writer_of_shard(s));
            }
            for i in 0..128 {
                let key = format!("key{i}");
                assert_eq!(t.shard_of(&key), r.shard_of(&key));
                assert_eq!(t.writer_of(&key), r.writer_of(&key));
            }
        }
    }

    #[test]
    fn apply_migrate_bumps_epoch_and_moves_ownership() {
        let t0 = RoutingTable::initial(KeyRouter::new(8, 4));
        let t1 = t0.apply(&ReshardPlan::migrate(5, 0)).unwrap();
        assert_eq!(t1.epoch(), 1);
        assert_eq!(t1.writer_of_shard(5), 0);
        // All other shards keep their epoch-0 owner.
        for s in (0..8).filter(|&s| s != 5) {
            assert_eq!(t1.writer_of_shard(s), t0.writer_of_shard(s));
        }
        assert_eq!(t0.moves_to(&t1), vec![(5, 1, 0)]);
    }

    #[test]
    fn apply_rejects_bad_plans() {
        let t0 = RoutingTable::initial(KeyRouter::new(8, 4));
        assert!(t0.apply(&ReshardPlan::migrate(8, 0)).is_err(), "shard oob");
        assert!(t0.apply(&ReshardPlan::migrate(0, 4)).is_err(), "writer oob");
        assert!(
            t0.apply(&ReshardPlan::migrate(3, 0).and_migrate(3, 1))
                .is_err(),
            "duplicate shard move"
        );
    }

    #[test]
    fn split_and_merge_lower_to_moves() {
        let t0 = RoutingTable::initial(KeyRouter::new(8, 4));
        // Writer 1 owns shards 1 and 5 at epoch 0; a split offloads the
        // odd-indexed half (shard 5) onto writer 2.
        let split = ReshardPlan::split_writer(&t0, 1, 2);
        assert_eq!(split.moves(), &[(5, 2)]);
        let t1 = t0.apply(&split).unwrap();
        assert_eq!(t1.shards_of_writer(1), vec![1]);
        assert_eq!(t1.shards_of_writer(2), vec![2, 5, 6]);
        // A merge drains writer 1 entirely into writer 0.
        let merge = ReshardPlan::merge_writer(&t1, 1, 0);
        let t2 = t1.apply(&merge).unwrap();
        assert!(t2.shards_of_writer(1).is_empty());
        assert_eq!(t2.shards_of_writer(0), vec![0, 1, 4]);
        assert_eq!(t2.epoch(), 2);
    }

    #[test]
    fn every_epoch_is_an_exact_partition() {
        // Property test: random chains of random (valid) plans never break
        // the exact-partition invariant, and no key is orphaned — its
        // shard always has exactly one in-range owner after every flip.
        let mut state: u64 = 0x5EED_2015;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..64 {
            let shards = 1 + (next() % 24) as u32;
            let writers = 1 + (next() % 8) as u32;
            let mut t = RoutingTable::initial(KeyRouter::new(shards, writers));
            for _ in 0..12 {
                let mut plan = ReshardPlan::default();
                let mut used = std::collections::BTreeSet::new();
                for _ in 0..(next() % 4) {
                    let s = (next() % shards as u64) as u32;
                    if used.insert(s) {
                        plan = plan.and_migrate(s, (next() % writers as u64) as u32);
                    }
                }
                let prev_epoch = t.epoch();
                t = t.apply(&plan).unwrap();
                assert_eq!(t.epoch(), prev_epoch + 1);
                assert!(t.is_exact_partition());
                // Cross-check via shards_of_writer: each shard appears in
                // exactly one writer's set.
                let mut seen = vec![0u32; shards as usize];
                for w in 0..writers as usize {
                    for s in t.shards_of_writer(w) {
                        seen[s as usize] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "each shard exactly one owner");
                // No key orphaned: every key routes to an in-range writer.
                for i in 0..32 {
                    assert!(t.writer_of(&format!("key{i}")) < writers as usize);
                }
            }
        }
    }

    #[test]
    fn epoch_value_encoded_len_matches_layout() {
        let t = RoutingTable::initial(KeyRouter::new(8, 4));
        let v = t.to_epoch_value();
        assert_eq!(v.epoch, 0);
        assert_eq!(v.owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(v.encoded_len(), 8 + 4 + 4 * 8);
    }
}
