//! The keyspace router: deterministic hash-sharding of string keys onto
//! register shards, plus the per-shard writer assignment.
//!
//! Every key lives in exactly one **shard**; each shard is one logical
//! register ([`RegId`]) multiplexed over the shared server fleet. Because
//! each shard is an SWMR register (§5.1 of the paper), it has exactly one
//! writer — the router assigns shards to writer clients round-robin, which
//! is what "honoring the SWMR rule" means at the store layer: a `put` is
//! always executed by the owning writer, while any client may `get`.
//!
//! The hash is FNV-1a (64-bit), chosen because it is tiny, dependency-free,
//! and — critically for reproducible experiments — **stable across runs,
//! platforms, and process restarts** (unlike `std`'s randomized `SipHash`).

use sbs_core::RegId;

/// 64-bit FNV-1a over arbitrary bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic key → shard → (register, writer) routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyRouter {
    shards: u32,
    writers: u32,
}

impl KeyRouter {
    /// A router over `shards` register shards owned by `writers` writer
    /// clients (round-robin).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(shards: u32, writers: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(writers >= 1, "need at least one writer");
        KeyRouter { shards, writers }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of writer clients.
    pub fn writers(&self) -> u32 {
        self.writers
    }

    /// The shard a key lives in.
    pub fn shard_of(&self, key: &str) -> u32 {
        (fnv1a64(key.as_bytes()) % self.shards as u64) as u32
    }

    /// The logical register backing a shard.
    pub fn reg_of_shard(&self, shard: u32) -> RegId {
        debug_assert!(shard < self.shards);
        RegId(shard)
    }

    /// The logical register a key lives in.
    pub fn reg_of(&self, key: &str) -> RegId {
        self.reg_of_shard(self.shard_of(key))
    }

    /// The writer-client index owning a shard (round-robin assignment; the
    /// SWMR single-writer rule at the store layer).
    pub fn writer_of_shard(&self, shard: u32) -> usize {
        (shard % self.writers) as usize
    }

    /// The writer-client index that must execute a `put` of this key.
    pub fn writer_of(&self, key: &str) -> usize {
        self.writer_of_shard(self.shard_of(key))
    }

    /// All shards owned by writer `w`.
    pub fn shards_of_writer(&self, w: usize) -> Vec<u32> {
        (0..self.shards)
            .filter(|&s| self.writer_of_shard(s) == w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_answers() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let r = KeyRouter::new(8, 4);
        for i in 0..256 {
            let key = format!("key{i}");
            let s = r.shard_of(&key);
            assert!(s < 8);
            assert_eq!(s, r.shard_of(&key), "same key, same shard");
            assert_eq!(r.reg_of(&key), RegId(s));
            assert_eq!(r.writer_of(&key), (s % 4) as usize);
        }
    }

    #[test]
    fn every_shard_has_exactly_one_writer() {
        let r = KeyRouter::new(8, 3);
        let mut owned = [0usize; 8];
        for w in 0..3 {
            for s in r.shards_of_writer(w) {
                owned[s as usize] += 1;
                assert_eq!(r.writer_of_shard(s), w);
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "partition must be exact");
    }

    #[test]
    fn keys_spread_over_shards() {
        let r = KeyRouter::new(8, 2);
        let mut hit = [false; 8];
        for i in 0..64 {
            hit[r.shard_of(&format!("key{i}")) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 keys must touch all 8 shards");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        KeyRouter::new(0, 1);
    }
}
