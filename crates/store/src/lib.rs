//! # sbs-store — a sharded multi-register key-value store
//!
//! The register constructions of `sbs-core` each deploy one register on a
//! dedicated server fleet. This crate turns them into a **store**: many
//! keys, hash-sharded onto many logical registers, multiplexed over one
//! *shared* fleet — the architectural seam scaling work (caching,
//! rebalancing, metadata/data separation à la Cachin–Dobre–Vukolić) builds
//! on. Three layers:
//!
//! 1. **Keyspace router** ([`KeyRouter`] / [`RoutingTable`]) —
//!    deterministic FNV-1a sharding of string keys onto `RegId`-keyed
//!    shards, and the **epoch-versioned** per-shard writer assignment
//!    that keeps each shard a single-writer (SWMR, §5.1) register while
//!    letting a [`ReshardPlan`] migrate shard ownership *live* (see
//!    `router`'s module docs for the dual-commit handoff).
//! 2. **Multiplexing nodes** ([`StoreClientNode`], [`StoreServerNode`]) —
//!    the *unmodified* `sbs-core` state machines ([`ServerCore`] servers,
//!    [`ReadEngine`]/[`WriteEngine`] clients, Byzantine adversaries) wrapped
//!    behind the shard-tagged, per-destination-**batched** [`StoreMsg`]
//!    envelope: every handler's messages to one peer travel as one
//!    delivery event.
//! 3. **Workload engine** ([`Workload`]) — YCSB-style read/write mixes,
//!    Zipfian/uniform key popularity, open- and closed-loop clients, and
//!    pluggable [`FaultPlan`]s driving the existing [`ByzStrategy`]
//!    adversaries and link-corruption hooks.
//!
//! Each shard register stores the whole shard's [`ShardMap`]; the shard's
//! unique writer keeps the authoritative copy and publishes a snapshot per
//! `put`. Per-key correctness is then register correctness by projection,
//! and [`StoreSystem::history_for_key`] extracts exactly the per-key
//! history the `sbs-check` checkers judge.
//!
//! # The bulk data plane (metadata/data separation)
//!
//! Full replication ships every snapshot to all `n ≥ 8t + 1` servers.
//! With [`StoreBuilder::bulk`] the store instead serializes each snapshot
//! (via `sbs-bulk`'s canonical codec), stores the bytes under their
//! content address on the shard's **`2t + 1` data replicas**, and carries
//! only the fixed-size digest reference ([`StoreVal::Ref`]) through the
//! *unmodified* register quorum — the Cachin–Dobre–Vukolić split. Reads
//! resolve the reference against the data replicas and re-verify the
//! digest, so a Byzantine data replica serving garbage bytes is detected
//! and routed around; per-key histories are indistinguishable from
//! full-replication runs (`tests/bulk_checks.rs` checks this
//! differentially), while payload bytes on the wire shrink by roughly
//! `n·rounds / (2t + 1)` (the `bulk_vs_full` bench measures it).
//!
//! [`StoreBuilder::bulk_coded`] goes one step further (AVID-style
//! dispersal): the same `2t + 1` window, but each replica stores only
//! one `k`-of-`m` **erasure-coded fragment** (~`1/k` of the payload),
//! verified against a Merkle commitment whose root rides the metadata
//! quorum as the reference digest. Pushes wait for `k + t` verified
//! acknowledgements, reads reconstruct from any `k` verified fragments
//! — cutting per-replica storage and bulk wire bytes by another ~`k`×
//! at the cost of a `k`-fragment reconstruction on every read.
//!
//! # Communication modes
//!
//! Every construction exists in two variants, and the store builds
//! either: [`StoreBuilder::asynchronous`] deploys the Figure 2/3
//! configuration (`n = 8t + 1` servers, rounds wait for `n − t`
//! acknowledgements), [`StoreBuilder::synchronous`] the Figure 5 /
//! Appendix A one (`n = 3t + 1` servers — fewer than half the fleet for
//! the same `t` — rounds wait for all `n` or a timeout derived from the
//! declared link bound). The [`StoreConfig`] snapshot on every
//! [`StoreSystem`] records the mode and the per-mode quorum sizes;
//! workloads, fault plans, and the checkers are mode-generic.
//!
//! ```
//! use sbs_store::{StoreBuilder, Workload};
//! use sbs_core::ByzStrategy;
//!
//! // 16 keys on 4 shards over one 9-server fleet (t = 1), one Byzantine
//! // server, 100-op YCSB-B (95% reads) with Zipfian popularity.
//! let builder = StoreBuilder::asynchronous(1).seed(7).shards(4).writers(2).extra_readers(1);
//! let mut wl = Workload::ycsb_b(100, 16);
//! wl.faults = sbs_store::FaultPlan::one_byzantine(3, ByzStrategy::StaleReplay);
//! let (report, sys) = wl.run(&builder);
//! assert_eq!(report.completed, 100);
//! // Every key's extracted history independently passes the atomicity
//! // checker.
//! sys.check_per_key_atomicity().unwrap();
//! ```
//!
//! The same workload shape on the synchronous minimal fleet — 4 servers
//! instead of 9 for `t = 1`:
//!
//! ```
//! use sbs_store::{StoreBuilder, Workload};
//! use sbs_sim::SimDuration;
//!
//! let builder = StoreBuilder::synchronous(1, SimDuration::millis(1))
//!     .seed(7)
//!     .shards(4)
//!     .writers(2);
//! assert_eq!(builder.config().n, 4);
//! let (report, sys) = Workload::ycsb_b(60, 16).run(&builder);
//! assert_eq!(report.completed, 60);
//! sys.check_per_key_atomicity().unwrap();
//! ```
//!
//! [`ServerCore`]: sbs_core::ServerCore
//! [`ReadEngine`]: sbs_core::ReadEngine
//! [`WriteEngine`]: sbs_core::WriteEngine
//! [`ByzStrategy`]: sbs_core::ByzStrategy

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batcher;
mod harness;
mod health;
mod map;
mod msg;
mod node;
mod router;
mod val;
mod workload;

pub use batcher::DestBatcher;
pub use harness::{StoreBuilder, StoreConfig, StoreNodeSet, StoreSystem};
pub use health::{FlightRecord, ReplicaHealth, ShardHealth, StoreHealth};
pub use map::ShardMap;
pub use msg::{StoreMsg, StoreOut};
pub use node::{DataPlane, StoreClientNode, StorePayload, StoreServerNode, StoreWire};
pub use router::{fnv1a64, KeyRouter, ReshardPlan, RoutingEpoch, RoutingTable};
pub use val::{SizedVal, StoreVal};
pub use workload::{
    FaultPlan, KeyDist, LoopMode, OpMix, PlannedOp, Workload, WorkloadReport, WorkloadStreams,
};

// The mode enum is `sbs-core`'s; re-exported so store users can match on
// `StoreConfig::mode` without a second dependency.
pub use sbs_core::SyncMode;
