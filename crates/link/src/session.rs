//! The client/server halves of the `ss-broadcast` abstraction (§2.1).
//!
//! The paper's register algorithms are written against a built-in broadcast
//! primitive with six properties: *termination*, *eventual delivery*,
//! *synchronized delivery* (when `ss_broadcast(m)` returns, at least
//! `n − 2t` correct servers have already delivered `m`), *no duplication*,
//! *validity*, and *order delivery*. Over the reliable FIFO links of the
//! model, these are obtained with a thin session layer:
//!
//! - the client tags each broadcast and counts link-level acknowledgements;
//!   the broadcast *completes* once `n − t` distinct servers acked, which
//!   guarantees at least `n − 2t` correct servers delivered (synchronized
//!   delivery);
//! - servers deliver payloads in arrival order (FIFO links preserve
//!   broadcast order) and suppress adjacent duplicates of the same tag
//!   (no duplication even if a transient fault re-injects the packet).
//!
//! This layer is deliberately *not* the bounded-capacity data-link protocol
//! of footnote 3 — that protocol lives in [`crate::datalink`] and is what
//! one would run beneath this layer on real, bounded, lossy channels. See
//! DESIGN.md §3 for the substitution argument.
//!
//! Both halves are plain state machines ("sans I/O"): they decide *what* to
//! send and deliver, the caller does the sending. That keeps them usable
//! from any runtime.

use sbs_sim::{DetRng, ProcessId};
use std::collections::HashMap;

/// A session tag identifying one `ss_broadcast` invocation of one client.
pub type SsTag = u64;

/// Client half: tracks the in-flight broadcast and its acknowledgements.
///
/// One instance per (client, destination-set) pair. Clients in the paper
/// are sequential, so at most one broadcast is active at a time; starting a
/// new one while active simply abandons the old (its late acks are
/// ignored), which is what an operation restarted after a transient fault
/// does anyway.
#[derive(Clone, Debug)]
pub struct SsBroadcaster {
    servers: Vec<ProcessId>,
    ack_quorum: usize,
    next_tag: SsTag,
    active: Option<ActiveBroadcast>,
}

#[derive(Clone, Debug)]
struct ActiveBroadcast {
    tag: SsTag,
    acked: Vec<ProcessId>,
    completed: bool,
}

/// What [`SsBroadcaster::on_ack`] observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AckOutcome {
    /// The ack completed the active broadcast (quorum reached just now).
    JustCompleted,
    /// The ack was counted but the quorum is not reached yet.
    Counted,
    /// The ack was stale (wrong tag), duplicated, or there is no active
    /// broadcast; it was ignored.
    Ignored,
}

impl SsBroadcaster {
    /// Creates the client half for broadcasts to `servers`, tolerating `t`
    /// Byzantine servers: completion requires `n − t` acks.
    ///
    /// # Panics
    ///
    /// Panics if `servers.len() <= t`.
    pub fn new(servers: Vec<ProcessId>, t: usize) -> Self {
        assert!(
            servers.len() > t,
            "need more than t={t} servers, got {}",
            servers.len()
        );
        let ack_quorum = servers.len() - t;
        SsBroadcaster {
            servers,
            ack_quorum,
            next_tag: 0,
            active: None,
        }
    }

    /// The destination servers.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    /// Number of acknowledgements required for completion (`n − t`).
    pub fn ack_quorum(&self) -> usize {
        self.ack_quorum
    }

    /// Starts a broadcast and returns its tag. The caller must send the
    /// payload, wrapped with this tag, to every server in
    /// [`SsBroadcaster::servers`]. Any previously active broadcast is
    /// abandoned.
    pub fn start(&mut self) -> SsTag {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        self.active = Some(ActiveBroadcast {
            tag,
            acked: Vec::with_capacity(self.ack_quorum),
            completed: false,
        });
        tag
    }

    /// Processes a link-level acknowledgement of `tag` from `from`.
    pub fn on_ack(&mut self, from: ProcessId, tag: SsTag) -> AckOutcome {
        let Some(active) = self.active.as_mut() else {
            return AckOutcome::Ignored;
        };
        if active.tag != tag || active.completed || active.acked.contains(&from) {
            return AckOutcome::Ignored;
        }
        active.acked.push(from);
        if active.acked.len() >= self.ack_quorum {
            active.completed = true;
            AckOutcome::JustCompleted
        } else {
            AckOutcome::Counted
        }
    }

    /// True while a broadcast is in flight and not yet completed.
    pub fn in_flight(&self) -> bool {
        matches!(self.active, Some(ref a) if !a.completed)
    }

    /// True if the most recent broadcast has completed (synchronized
    /// delivery postcondition holds: ≥ `n − 2t` correct servers delivered).
    pub fn last_completed(&self) -> bool {
        matches!(self.active, Some(ref a) if a.completed)
    }

    /// True if the broadcast identified by `tag` is the active one and has
    /// completed.
    pub fn is_completed_tag(&self, tag: SsTag) -> bool {
        matches!(self.active, Some(ref a) if a.tag == tag && a.completed)
    }

    /// Transient-fault hook: scrambles the tag counter and in-flight state.
    pub fn corrupt(&mut self, rng: &mut DetRng) {
        self.next_tag = rng.next_u64();
        if rng.chance(0.5) {
            self.active = Some(ActiveBroadcast {
                tag: rng.next_u64(),
                acked: Vec::new(),
                completed: rng.chance(0.5),
            });
        } else {
            self.active = None;
        }
    }
}

/// Server half: decides, for each incoming tagged payload, whether to
/// deliver it to the protocol and confirms receipt.
///
/// One instance per server, shared across all clients it talks to.
#[derive(Clone, Debug, Default)]
pub struct SsReceiver {
    /// Last tag delivered per sender (adjacent-duplicate suppression).
    last_tag: HashMap<ProcessId, SsTag>,
}

/// The action a server takes for an incoming tagged payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reception {
    /// Deliver the payload to the protocol handler *and* acknowledge.
    DeliverAndAck,
    /// Acknowledge only — the payload is an adjacent duplicate.
    AckOnly,
}

impl SsReceiver {
    /// Creates a fresh receiver.
    pub fn new() -> Self {
        SsReceiver::default()
    }

    /// Processes the arrival of a payload tagged `tag` from client `from`.
    pub fn on_payload(&mut self, from: ProcessId, tag: SsTag) -> Reception {
        match self.last_tag.get(&from) {
            Some(&last) if last == tag => Reception::AckOnly,
            _ => {
                self.last_tag.insert(from, tag);
                Reception::DeliverAndAck
            }
        }
    }

    /// Transient-fault hook: forgets / scrambles delivery history.
    pub fn corrupt(&mut self, rng: &mut DetRng) {
        for (_, v) in self.last_tag.iter_mut() {
            *v = rng.next_u64();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<ProcessId> {
        (0..n).map(ProcessId).collect()
    }

    #[test]
    fn completes_exactly_at_quorum() {
        let mut b = SsBroadcaster::new(servers(9), 1); // quorum 8
        let tag = b.start();
        assert!(b.in_flight());
        for i in 0..7 {
            assert_eq!(b.on_ack(ProcessId(i), tag), AckOutcome::Counted);
        }
        assert_eq!(b.on_ack(ProcessId(7), tag), AckOutcome::JustCompleted);
        assert!(b.last_completed());
        assert!(!b.in_flight());
        // Extra acks after completion are ignored.
        assert_eq!(b.on_ack(ProcessId(8), tag), AckOutcome::Ignored);
    }

    #[test]
    fn duplicate_acks_do_not_double_count() {
        let mut b = SsBroadcaster::new(servers(3), 1); // quorum 2
        let tag = b.start();
        assert_eq!(b.on_ack(ProcessId(0), tag), AckOutcome::Counted);
        assert_eq!(b.on_ack(ProcessId(0), tag), AckOutcome::Ignored);
        assert_eq!(b.on_ack(ProcessId(1), tag), AckOutcome::JustCompleted);
    }

    #[test]
    fn stale_tags_are_ignored() {
        let mut b = SsBroadcaster::new(servers(3), 1);
        let old = b.start();
        let new = b.start(); // abandons `old`
        assert_eq!(b.on_ack(ProcessId(0), old), AckOutcome::Ignored);
        assert_eq!(b.on_ack(ProcessId(0), new), AckOutcome::Counted);
    }

    #[test]
    fn tags_are_fresh_per_broadcast() {
        let mut b = SsBroadcaster::new(servers(3), 1);
        let t1 = b.start();
        let t2 = b.start();
        assert_ne!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "more than t")]
    fn rejects_degenerate_configs() {
        SsBroadcaster::new(servers(1), 1);
    }

    #[test]
    fn receiver_delivers_fresh_and_suppresses_adjacent_duplicates() {
        let mut r = SsReceiver::new();
        let c = ProcessId(42);
        assert_eq!(r.on_payload(c, 5), Reception::DeliverAndAck);
        assert_eq!(r.on_payload(c, 5), Reception::AckOnly);
        assert_eq!(r.on_payload(c, 6), Reception::DeliverAndAck);
        // A different client's tags are tracked independently.
        assert_eq!(r.on_payload(ProcessId(43), 5), Reception::DeliverAndAck);
    }

    #[test]
    fn corruption_recovers_on_next_broadcast() {
        let mut rng = DetRng::from_seed(7);
        let mut b = SsBroadcaster::new(servers(5), 1); // quorum 4
        b.corrupt(&mut rng);
        // Whatever the corrupted state, a fresh start() works normally.
        let tag = b.start();
        for i in 0..3 {
            assert_eq!(b.on_ack(ProcessId(i), tag), AckOutcome::Counted);
        }
        assert_eq!(b.on_ack(ProcessId(3), tag), AckOutcome::JustCompleted);
    }

    #[test]
    fn corrupted_receiver_may_redeliver_but_then_realigns() {
        let mut rng = DetRng::from_seed(8);
        let mut r = SsReceiver::new();
        let c = ProcessId(0);
        assert_eq!(r.on_payload(c, 1), Reception::DeliverAndAck);
        r.corrupt(&mut rng);
        // Post-fault behaviour is arbitrary for one payload…
        let _ = r.on_payload(c, 1);
        // …but tags advance and suppression works again.
        assert_eq!(r.on_payload(c, 2), Reception::DeliverAndAck);
        assert_eq!(r.on_payload(c, 2), Reception::AckOnly);
    }
}
