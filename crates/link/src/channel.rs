//! The channel model underneath the self-stabilizing data link.
//!
//! Footnote 3 of the paper (and §4.2 of Dolev's *Self-Stabilization*) build
//! `ss-broadcast` on *bounded-capacity* channels: at most `cap` packets are
//! in transit at once, packets may be lost or duplicated, and — because the
//! initial configuration is arbitrary — a channel may initially contain up
//! to `cap` garbage packets. [`BoundedChannel`] models exactly that: a FIFO
//! queue with hard capacity, probabilistic loss/duplication applied at
//! enqueue time, and a helper to fill it with arbitrary initial content.

use sbs_sim::DetRng;
use std::collections::VecDeque;

/// A bounded-capacity, lossy, duplicating FIFO channel.
#[derive(Clone, Debug)]
pub struct BoundedChannel<P> {
    queue: VecDeque<P>,
    cap: usize,
    loss: f64,
    dup: f64,
}

impl<P: Clone> BoundedChannel<P> {
    /// Creates a channel with capacity `cap`, per-packet loss probability
    /// `loss`, and per-packet duplication probability `dup`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize, loss: f64, dup: f64) -> Self {
        assert!(cap > 0, "channel capacity must be positive");
        BoundedChannel {
            queue: VecDeque::with_capacity(cap),
            cap,
            loss,
            dup,
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Packets currently in transit.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is in transit.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Attempts to put `p` in transit. The packet may be lost (probability
    /// `loss`), duplicated (probability `dup`, if capacity allows), or
    /// dropped because the channel is full — all of which the data-link
    /// protocol must tolerate.
    pub fn push(&mut self, p: P, rng: &mut DetRng) {
        if rng.chance(self.loss) {
            return;
        }
        if self.queue.len() < self.cap {
            self.queue.push_back(p.clone());
        }
        if rng.chance(self.dup) && self.queue.len() < self.cap {
            self.queue.push_back(p);
        }
    }

    /// Takes the oldest in-transit packet, if any.
    pub fn pop(&mut self) -> Option<P> {
        self.queue.pop_front()
    }

    /// Replaces the channel contents with `count` arbitrary packets
    /// produced by `gen` (clamped to capacity) — the "arbitrary initial
    /// configuration" of the self-stabilization model.
    pub fn fill_arbitrary(
        &mut self,
        count: usize,
        rng: &mut DetRng,
        mut gen: impl FnMut(&mut DetRng) -> P,
    ) {
        self.queue.clear();
        for _ in 0..count.min(self.cap) {
            let p = gen(rng);
            self.queue.push_back(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_channel_is_fifo() {
        let mut rng = DetRng::from_seed(1);
        let mut ch = BoundedChannel::new(4, 0.0, 0.0);
        for i in 0..4 {
            ch.push(i, &mut rng);
        }
        assert_eq!(ch.len(), 4);
        for i in 0..4 {
            assert_eq!(ch.pop(), Some(i));
        }
        assert!(ch.is_empty());
        assert_eq!(ch.pop(), None);
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut rng = DetRng::from_seed(1);
        let mut ch = BoundedChannel::new(2, 0.0, 0.0);
        for i in 0..10 {
            ch.push(i, &mut rng);
        }
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.pop(), Some(0));
        assert_eq!(ch.pop(), Some(1));
    }

    #[test]
    fn total_loss_delivers_nothing() {
        let mut rng = DetRng::from_seed(1);
        let mut ch = BoundedChannel::new(8, 1.0, 0.0);
        for i in 0..8 {
            ch.push(i, &mut rng);
        }
        assert!(ch.is_empty());
    }

    #[test]
    fn duplication_adds_copies_within_capacity() {
        let mut rng = DetRng::from_seed(1);
        let mut ch = BoundedChannel::new(8, 0.0, 1.0);
        ch.push(7, &mut rng);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.pop(), Some(7));
        assert_eq!(ch.pop(), Some(7));
    }

    #[test]
    fn fill_arbitrary_respects_capacity() {
        let mut rng = DetRng::from_seed(1);
        let mut ch = BoundedChannel::new(3, 0.0, 0.0);
        ch.fill_arbitrary(10, &mut rng, |r| r.next_u64());
        assert_eq!(ch.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedChannel::<u8>::new(0, 0.0, 0.0);
    }
}
