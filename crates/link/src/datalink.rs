//! The token-based self-stabilizing data-link protocol of footnote 3.
//!
//! > "when a message m send operation is invoked by a correct process pi to
//! > a correct process pj, pi repeatedly sends the packet (0, m) to pj until
//! > receiving (cap + 1) packets from pj ... Then pi repeatedly sends the
//! > packets (1, m) to pj until receiving (cap + 1) packets from pj. Process
//! > pj sends (bit, ack) only when receiving (bit, m), and executes
//! > ss_deliver(m) when receiving the packet (1, m) immediately after
//! > receiving the packet (0, m)."
//!
//! The `cap + 1` acknowledgement count is the self-stabilization trick: at
//! most `cap` stale packets can sit in the two channels, so at least one of
//! the `cap + 1` matching-bit acknowledgements was generated *by the
//! receiver in response to a current-phase packet*. After at most one
//! initial message (which an arbitrary initial configuration may lose or
//! garble), every subsequent `send` is delivered exactly once, in order —
//! this is verified empirically by the tests below and measured by the
//! `datalink` benchmark.
//!
//! [`DlSender`] / [`DlReceiver`] are pure state machines; [`DataLinkSim`]
//! couples them through two [`BoundedChannel`]s and drives retransmission.

use crate::channel::BoundedChannel;
use sbs_sim::DetRng;
use std::collections::VecDeque;

/// A data packet `(bit, payload)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPacket<T> {
    /// The alternating phase bit (0 or 1).
    pub bit: u8,
    /// The message being transferred.
    pub payload: T,
}

/// An acknowledgement packet `(bit, ack)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckPacket {
    /// Echo of the phase bit being acknowledged.
    pub bit: u8,
}

/// Sender half of the data link.
#[derive(Clone, Debug)]
pub struct DlSender<T> {
    cap: usize,
    queue: VecDeque<T>,
    current: Option<T>,
    bit: u8,
    acks: usize,
    transfers_completed: u64,
}

impl<T: Clone> DlSender<T> {
    /// Creates a sender for channels of capacity `cap`.
    pub fn new(cap: usize) -> Self {
        DlSender {
            cap,
            queue: VecDeque::new(),
            current: None,
            bit: 0,
            acks: 0,
            transfers_completed: 0,
        }
    }

    /// Queues `m` for transfer; starts immediately if idle.
    pub fn send(&mut self, m: T) {
        self.queue.push_back(m);
        if self.current.is_none() {
            self.start_next();
        }
    }

    /// True when no transfer is active and the queue is empty.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.queue.is_empty()
    }

    /// Messages fully transferred (both phases acknowledged) so far.
    pub fn transfers_completed(&self) -> u64 {
        self.transfers_completed
    }

    /// Retransmission tick: the packet to (re)send now, if a transfer is
    /// active. The driver calls this persistently — that is what defeats
    /// packet loss.
    pub fn tick(&self) -> Option<DataPacket<T>> {
        self.current.as_ref().map(|m| DataPacket {
            bit: self.bit,
            payload: m.clone(),
        })
    }

    /// Processes an acknowledgement. Acks whose bit does not match the
    /// current phase are stale and ignored; `cap + 1` matching acks end the
    /// phase.
    pub fn on_ack(&mut self, ack: AckPacket) {
        if self.current.is_none() || ack.bit != self.bit {
            return;
        }
        self.acks += 1;
        if self.acks > self.cap {
            self.acks = 0;
            if self.bit == 0 {
                self.bit = 1;
            } else {
                self.transfers_completed += 1;
                self.current = None;
                self.bit = 0;
                self.start_next();
            }
        }
    }

    /// Transient-fault hook: arbitrarily corrupts phase state (but not the
    /// application's outgoing queue, which models messages not yet sent).
    pub fn corrupt(&mut self, rng: &mut DetRng) {
        self.bit = (rng.next_u64() % 2) as u8;
        self.acks = (rng.next_u64() as usize) % (self.cap + 1);
    }

    fn start_next(&mut self) {
        if let Some(m) = self.queue.pop_front() {
            self.current = Some(m);
            self.bit = 0;
            self.acks = 0;
        }
    }
}

/// Receiver half of the data link.
#[derive(Clone, Debug)]
pub struct DlReceiver<T> {
    last_bit: Option<u8>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Clone> DlReceiver<T> {
    /// Creates a receiver.
    pub fn new() -> Self {
        DlReceiver {
            last_bit: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Processes a data packet: returns the payload to `ss_deliver` (if the
    /// packet completes a 0→1 transition) and the acknowledgement to send
    /// back.
    pub fn on_packet(&mut self, p: DataPacket<T>) -> (Option<T>, AckPacket) {
        let delivered = if self.last_bit == Some(0) && p.bit == 1 {
            Some(p.payload)
        } else {
            None
        };
        self.last_bit = Some(p.bit);
        (
            delivered,
            AckPacket {
                bit: self.last_bit.unwrap(),
            },
        )
    }

    /// Transient-fault hook: arbitrary last-bit memory.
    pub fn corrupt(&mut self, rng: &mut DetRng) {
        self.last_bit = match rng.next_u64() % 3 {
            0 => None,
            1 => Some(0),
            _ => Some(1),
        };
    }
}

impl<T: Clone> Default for DlReceiver<T> {
    fn default() -> Self {
        DlReceiver::new()
    }
}

/// A sender and receiver coupled by two bounded channels, with a
/// deterministic step driver. This is the unit under test for claim C7 and
/// the `datalink` benchmark.
#[derive(Debug)]
pub struct DataLinkSim<T> {
    /// The sender endpoint.
    pub sender: DlSender<T>,
    /// The receiver endpoint.
    pub receiver: DlReceiver<T>,
    fwd: BoundedChannel<DataPacket<T>>,
    rev: BoundedChannel<AckPacket>,
    rng: DetRng,
    delivered: Vec<T>,
    packets_sent: u64,
}

impl<T: Clone> DataLinkSim<T> {
    /// Builds the coupled system: channel capacity `cap`, loss probability
    /// `loss`, duplication probability `dup`, deterministic `seed`.
    pub fn new(cap: usize, loss: f64, dup: f64, seed: u64) -> Self {
        DataLinkSim {
            sender: DlSender::new(cap),
            receiver: DlReceiver::new(),
            fwd: BoundedChannel::new(cap, loss, dup),
            rev: BoundedChannel::new(cap, loss, dup),
            rng: DetRng::derive(seed, 0xD47A),
            delivered: Vec::new(),
            packets_sent: 0,
        }
    }

    /// Applies an arbitrary initial configuration: corrupts both endpoint
    /// states and fills both channels with garbage packets.
    pub fn scramble(&mut self, garbage_payload: impl FnMut(&mut DetRng) -> T) {
        let mut rng = self.rng.clone();
        self.sender.corrupt(&mut rng);
        self.receiver.corrupt(&mut rng);
        let mut gen = garbage_payload;
        let cap = self.fwd.capacity();
        self.fwd.fill_arbitrary(cap, &mut rng, |r| DataPacket {
            bit: (r.next_u64() % 2) as u8,
            payload: gen(r),
        });
        let cap = self.rev.capacity();
        self.rev.fill_arbitrary(cap, &mut rng, |r| AckPacket {
            bit: (r.next_u64() % 2) as u8,
        });
        self.rng = rng;
    }

    /// One scheduler round: the sender retransmits, the receiver consumes
    /// one data packet (acknowledging it), the sender consumes one ack.
    pub fn step(&mut self) {
        if let Some(p) = self.sender.tick() {
            self.packets_sent += 1;
            self.fwd.push(p, &mut self.rng);
        }
        if let Some(p) = self.fwd.pop() {
            let (delivered, ack) = self.receiver.on_packet(p);
            if let Some(m) = delivered {
                self.delivered.push(m);
            }
            self.rev.push(ack, &mut self.rng);
        }
        if let Some(ack) = self.rev.pop() {
            self.sender.on_ack(ack);
        }
    }

    /// Steps until the sender drains its queue or `max_steps` elapse.
    /// Returns `true` on quiescence.
    pub fn run_until_idle(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if self.sender.is_idle() {
                return true;
            }
            self.step();
        }
        self.sender.is_idle()
    }

    /// Everything `ss_deliver`ed so far, in delivery order.
    pub fn delivered(&self) -> &[T] {
        &self.delivered
    }

    /// Data packets handed to the forward channel (retransmissions
    /// included) — the cost metric for the E9 experiment.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX_STEPS: u64 = 2_000_000;

    fn run_clean(cap: usize, loss: f64, dup: f64, seed: u64, k: u64) -> Vec<u64> {
        let mut dl = DataLinkSim::new(cap, loss, dup, seed);
        for m in 0..k {
            dl.sender.send(m);
        }
        assert!(dl.run_until_idle(MAX_STEPS), "data link failed to drain");
        dl.delivered().to_vec()
    }

    #[test]
    fn clean_start_exactly_once_in_order() {
        let delivered = run_clean(4, 0.0, 0.0, 1, 20);
        assert_eq!(delivered, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn lossy_channel_still_exactly_once_in_order() {
        for seed in 0..10 {
            let delivered = run_clean(4, 0.25, 0.0, seed, 15);
            assert_eq!(delivered, (0..15).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn duplicating_channel_still_exactly_once_in_order() {
        for seed in 0..10 {
            let delivered = run_clean(4, 0.0, 0.3, seed, 15);
            assert_eq!(delivered, (0..15).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn lossy_and_duplicating_combined() {
        for seed in 0..10 {
            let delivered = run_clean(6, 0.2, 0.2, seed, 12);
            assert_eq!(delivered, (0..12).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    /// The self-stabilization claim (C7): from an *arbitrary initial
    /// configuration* — corrupted endpoint states, both channels full of
    /// garbage — the link may lose or duplicate a bounded prefix, but after
    /// the first completed transfer it delivers every message exactly once,
    /// in order.
    #[test]
    fn stabilizes_from_arbitrary_initial_configuration() {
        const GARBAGE: u64 = 1 << 32; // distinguishable from real payloads
        for seed in 0..30 {
            let mut dl = DataLinkSim::new(4, 0.1, 0.1, seed);
            dl.scramble(|r| GARBAGE + r.next_u64() % 1000);
            let k = 12u64;
            for m in 0..k {
                dl.sender.send(m);
            }
            assert!(dl.run_until_idle(MAX_STEPS), "seed {seed}: failed to drain");

            let delivered = dl.delivered();
            // Real payloads delivered, in order of appearance.
            let real: Vec<u64> = delivered.iter().copied().filter(|&m| m < k).collect();
            // Everything from message 1 on must appear exactly once, in order.
            // Message 0 may have been swallowed or mangled by the arbitrary
            // initial configuration (the protocol stabilizes after the first
            // completed transfer).
            let tail: Vec<u64> = real.iter().copied().filter(|&m| m >= 1).collect();
            assert_eq!(
                tail,
                (1..k).collect::<Vec<_>>(),
                "seed {seed}: post-stabilization deliveries must be exact; got {delivered:?}"
            );
            // Message 0 appears at most once.
            assert!(
                real.iter().filter(|&&m| m == 0).count() <= 1,
                "seed {seed}: no duplication even for the first message"
            );
            // Spurious (garbage) deliveries are bounded by the initial channel
            // content plus the possibly corrupted in-flight transfer.
            let spurious = delivered.iter().filter(|&&m| m >= GARBAGE).count();
            assert!(
                spurious <= 4 + 1,
                "seed {seed}: too many spurious deliveries ({spurious})"
            );
        }
    }

    #[test]
    fn mid_run_corruption_recovers() {
        for seed in 0..10 {
            let mut dl = DataLinkSim::new(4, 0.05, 0.05, seed);
            for m in 0..5u64 {
                dl.sender.send(m);
            }
            assert!(dl.run_until_idle(MAX_STEPS));
            // Transient fault strikes both endpoints mid-run.
            let mut rng = DetRng::derive(seed, 77);
            dl.sender.corrupt(&mut rng);
            dl.receiver.corrupt(&mut rng);
            for m in 100..110u64 {
                dl.sender.send(m);
            }
            assert!(dl.run_until_idle(MAX_STEPS));
            let after: Vec<u64> = dl
                .delivered()
                .iter()
                .copied()
                .filter(|&m| m > 100)
                .collect();
            // 100 itself may be the one sacrificial transfer; 101.. are exact.
            assert_eq!(after, (101..110).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn packet_overhead_grows_with_capacity() {
        // Each message costs at least 2*(cap+1) acknowledged round trips, so
        // the packets-per-message overhead must grow with cap. (This is the
        // shape measured by experiment E9.)
        let mut overheads = Vec::new();
        for cap in [2usize, 4, 8] {
            let mut dl = DataLinkSim::new(cap, 0.0, 0.0, 7);
            for m in 0..10u64 {
                dl.sender.send(m);
            }
            assert!(dl.run_until_idle(MAX_STEPS));
            overheads.push(dl.packets_sent() as f64 / 10.0);
        }
        assert!(
            overheads[0] < overheads[1] && overheads[1] < overheads[2],
            "overhead should increase with cap: {overheads:?}"
        );
    }

    #[test]
    fn sender_queue_is_fifo() {
        let mut s = DlSender::new(2);
        assert!(s.is_idle());
        s.send("a");
        s.send("b");
        assert!(!s.is_idle());
        // Finish "a": 3 acks for bit 0, then 3 for bit 1.
        for _ in 0..3 {
            s.on_ack(AckPacket { bit: 0 });
        }
        assert_eq!(s.tick().unwrap().bit, 1);
        for _ in 0..3 {
            s.on_ack(AckPacket { bit: 1 });
        }
        assert_eq!(s.transfers_completed(), 1);
        // Now "b" is active in phase 0.
        let p = s.tick().unwrap();
        assert_eq!((p.bit, p.payload), (0, "b"));
    }

    #[test]
    fn stale_acks_are_ignored() {
        let mut s = DlSender::new(2);
        s.send(1u8);
        for _ in 0..100 {
            s.on_ack(AckPacket { bit: 1 }); // wrong phase
        }
        assert_eq!(s.tick().unwrap().bit, 0, "phase must not advance");
    }

    #[test]
    fn receiver_delivers_only_on_zero_to_one_transition() {
        let mut r: DlReceiver<&str> = DlReceiver::new();
        let (d, a) = r.on_packet(DataPacket {
            bit: 1,
            payload: "x",
        });
        assert_eq!(d, None, "1 without preceding 0 must not deliver");
        assert_eq!(a.bit, 1);
        let (d, _) = r.on_packet(DataPacket {
            bit: 0,
            payload: "m",
        });
        assert_eq!(d, None);
        let (d, _) = r.on_packet(DataPacket {
            bit: 0,
            payload: "m",
        });
        assert_eq!(d, None, "repeated 0s do not deliver");
        let (d, _) = r.on_packet(DataPacket {
            bit: 1,
            payload: "m",
        });
        assert_eq!(d, Some("m"));
        let (d, _) = r.on_packet(DataPacket {
            bit: 1,
            payload: "m",
        });
        assert_eq!(d, None, "repeated 1s do not re-deliver");
    }
}
