//! # sbs-link — self-stabilizing communication layers
//!
//! The register algorithms of the paper assume a built-in broadcast
//! abstraction, `ss-broadcast`, with six properties (§2.1): termination,
//! eventual delivery, **synchronized delivery** (when a broadcast returns,
//! at least `n − 2t` correct servers have delivered it), no duplication,
//! validity, and per-sender order delivery. This crate provides:
//!
//! - [`SsBroadcaster`] / [`SsReceiver`] — the session layer implementing
//!   those properties over the reliable FIFO links of the system model.
//!   These are the pieces `sbs-core`'s writers, readers and servers embed.
//! - [`DlSender`] / [`DlReceiver`] / [`DataLinkSim`] — the token-based
//!   self-stabilizing data-link protocol of footnote 3, which realizes
//!   reliable FIFO delivery over *bounded-capacity, lossy, duplicating*
//!   channels whose initial content is arbitrary. This is the substrate one
//!   would deploy beneath the session layer outside the simulator.
//! - [`BoundedChannel`] — the channel model for the data link.
//!
//! ```
//! use sbs_link::DataLinkSim;
//!
//! // Exactly-once in-order delivery over a lossy bounded channel:
//! let mut dl = DataLinkSim::new(4, 0.2, 0.1, 42);
//! for m in 0..5u64 { dl.sender.send(m); }
//! assert!(dl.run_until_idle(1_000_000));
//! assert_eq!(dl.delivered(), &[0, 1, 2, 3, 4]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod datalink;
mod session;

pub use channel::BoundedChannel;
pub use datalink::{AckPacket, DataLinkSim, DataPacket, DlReceiver, DlSender};
pub use session::{AckOutcome, Reception, SsBroadcaster, SsReceiver, SsTag};
