//! Verifies the six ss-broadcast properties (§2.1 of the paper) for the
//! session layer running inside the discrete-event simulator.
//!
//! The key property is *synchronized delivery*: if a client invokes
//! `ss_broadcast(m)` at τ1 and returns at τ2, then at least `n − 2t`
//! correct servers executed `ss_deliver(m)` strictly inside `(τ1, τ2)`.

use sbs_link::{AckOutcome, Reception, SsBroadcaster, SsReceiver, SsTag};
use sbs_sim::{
    Context, DelayModel, Message, Node, ProcessId, SimConfig, SimDuration, SimTime, Simulation,
};
use std::any::Any;

#[derive(Clone, Debug)]
enum Msg {
    /// Tagged payload from the client.
    Payload { tag: SsTag, body: u64 },
    /// Link-level acknowledgement from a server.
    Ack { tag: SsTag },
}

impl Message for Msg {
    fn label(&self) -> &'static str {
        match self {
            Msg::Payload { .. } => "SS_PAYLOAD",
            Msg::Ack { .. } => "SS_ACK",
        }
    }
}

#[derive(Clone, Debug)]
enum Event {
    /// A server delivered (tag, body).
    Delivered {
        #[allow(dead_code)]
        tag: SsTag,
        body: u64,
    },
    /// The client's broadcast of `tag` completed.
    Completed {
        #[allow(dead_code)]
        tag: SsTag,
    },
}

struct Client {
    bcast: SsBroadcaster,
}

impl Client {
    fn broadcast(&mut self, body: u64, ctx: &mut Context<'_, Msg, Event>) -> SsTag {
        let tag = self.bcast.start();
        let servers: Vec<ProcessId> = self.bcast.servers().to_vec();
        ctx.send_all(servers, Msg::Payload { tag, body });
        tag
    }
}

impl Node for Client {
    type Msg = Msg;
    type Out = Event;
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, Event>) {
        if let Msg::Ack { tag } = msg {
            if self.bcast.on_ack(from, tag) == AckOutcome::JustCompleted {
                ctx.output(Event::Completed { tag });
            }
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A correct server; `mute` servers model Byzantine silence (the worst case
/// for the completion quorum).
struct Server {
    recv: SsReceiver,
    mute: bool,
}

impl Node for Server {
    type Msg = Msg;
    type Out = Event;
    fn on_message(&mut self, from: ProcessId, msg: Msg, ctx: &mut Context<'_, Msg, Event>) {
        if self.mute {
            return;
        }
        if let Msg::Payload { tag, body } = msg {
            match self.recv.on_payload(from, tag) {
                Reception::DeliverAndAck => {
                    ctx.output(Event::Delivered { tag, body });
                    ctx.send(from, Msg::Ack { tag });
                }
                Reception::AckOnly => ctx.send(from, Msg::Ack { tag }),
            }
        }
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct World {
    sim: Simulation<Msg, Event>,
    client: ProcessId,
    servers: Vec<ProcessId>,
}

fn build(n: usize, t: usize, mute: usize, seed: u64) -> World {
    let mut sim: Simulation<Msg, Event> = Simulation::new(SimConfig::with_seed(seed));
    let client = sim.reserve_id();
    let servers: Vec<ProcessId> = (0..n).map(|_| sim.reserve_id()).collect();
    for &s in &servers {
        sim.add_duplex(
            client,
            s,
            DelayModel::Uniform {
                lo: SimDuration::micros(50),
                hi: SimDuration::millis(2),
            },
        );
    }
    sim.add_node_at(
        client,
        Client {
            bcast: SsBroadcaster::new(servers.clone(), t),
        },
    );
    for (i, &s) in servers.iter().enumerate() {
        sim.add_node_at(
            s,
            Server {
                recv: SsReceiver::new(),
                mute: i < mute,
            },
        );
    }
    World {
        sim,
        client,
        servers,
    }
}

const HORIZON: SimTime = SimTime::from_nanos(u64::MAX / 2);

#[test]
fn synchronized_delivery_holds_with_t_mute_servers() {
    let (n, t) = (9, 1);
    for seed in 0..20 {
        let mut w = build(n, t, t, seed);
        let start = w.sim.now();
        w.sim.with_node::<Client, _>(w.client, |c, ctx| {
            c.broadcast(7, ctx);
        });
        assert!(w.sim.run_until_quiescent(HORIZON));
        let outs = w.sim.take_outputs();

        let completed_at = outs
            .iter()
            .find_map(|(time, _, e)| match e {
                Event::Completed { .. } => Some(*time),
                _ => None,
            })
            .expect("broadcast must terminate (termination property)");

        let delivered_inside = outs
            .iter()
            .filter(|(time, pid, e)| {
                matches!(e, Event::Delivered { body: 7, .. })
                    && *time > start
                    && *time < completed_at
                    && w.servers.contains(pid)
            })
            .count();
        assert!(
            delivered_inside >= n - 2 * t,
            "seed {seed}: only {delivered_inside} servers delivered before completion, need {}",
            n - 2 * t
        );
    }
}

#[test]
fn eventual_delivery_reaches_all_correct_servers() {
    let (n, t) = (9, 1);
    let mut w = build(n, t, t, 3);
    w.sim.with_node::<Client, _>(w.client, |c, ctx| {
        c.broadcast(9, ctx);
    });
    assert!(w.sim.run_until_quiescent(HORIZON));
    let outs = w.sim.take_outputs();
    let delivered = outs
        .iter()
        .filter(|(_, _, e)| matches!(e, Event::Delivered { body: 9, .. }))
        .count();
    // All n - t non-mute servers deliver eventually.
    assert_eq!(delivered, n - t);
}

#[test]
fn order_delivery_per_sender() {
    let (n, t) = (9, 1);
    let mut w = build(n, t, 0, 11);
    for body in 0..10u64 {
        w.sim.with_node::<Client, _>(w.client, |c, ctx| {
            c.broadcast(body, ctx);
        });
        // Interleave: let some (but not necessarily all) traffic flow.
        w.sim.run_for(SimDuration::micros(300));
    }
    assert!(w.sim.run_until_quiescent(HORIZON));
    let outs = w.sim.take_outputs();
    for &s in &w.servers {
        let seq: Vec<u64> = outs
            .iter()
            .filter(|(_, pid, _)| *pid == s)
            .filter_map(|(_, _, e)| match e {
                Event::Delivered { body, .. } => Some(*body),
                _ => None,
            })
            .collect();
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        assert_eq!(seq, sorted, "server {s} delivered out of order: {seq:?}");
    }
}

#[test]
fn no_duplication_even_with_reinjected_packets() {
    let (n, t) = (5, 1);
    let mut w = build(n, t, 0, 13);
    w.sim.with_node::<Client, _>(w.client, |c, ctx| {
        c.broadcast(1, ctx);
    });
    assert!(w.sim.run_until_quiescent(HORIZON));
    // A transient fault re-injects a stale copy of the same payload
    // (same tag) into one server's link.
    let victim = w.servers[0];
    w.sim
        .set_garbage_gen(|_, _, _| Msg::Payload { tag: 0, body: 1 });
    w.sim
        .schedule_link_garbage(w.sim.now() + SimDuration::micros(1), w.client, victim, 1);
    assert!(w.sim.run_until_quiescent(HORIZON));
    let outs = w.sim.take_outputs();
    let by_victim = outs
        .iter()
        .filter(|(_, pid, e)| *pid == victim && matches!(e, Event::Delivered { body: 1, .. }))
        .count();
    assert_eq!(
        by_victim, 1,
        "adjacent duplicate of the same tag must be suppressed"
    );
}

#[test]
fn termination_despite_byzantine_silence_up_to_t() {
    // With exactly t mute servers, completion still happens (quorum n - t).
    let (n, t) = (9, 1);
    let mut w = build(n, t, t, 17);
    w.sim.with_node::<Client, _>(w.client, |c, ctx| {
        c.broadcast(2, ctx);
    });
    assert!(w.sim.run_until_quiescent(HORIZON));
    let completed = w
        .sim
        .take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, Event::Completed { .. }));
    assert!(completed);
}

#[test]
fn more_than_t_mute_servers_blocks_completion() {
    // The quorum is unreachable with t+1 silent servers — the abstraction's
    // termination property genuinely depends on the failure bound.
    let (n, t) = (9, 1);
    let mut w = build(n, t, t + 1, 19);
    w.sim.with_node::<Client, _>(w.client, |c, ctx| {
        c.broadcast(3, ctx);
    });
    assert!(w.sim.run_until_quiescent(HORIZON));
    let completed = w
        .sim
        .take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, Event::Completed { .. }));
    assert!(!completed);
}
