//! Property tests for the footnote-3 data link: exactly-once in-order
//! delivery must hold across the whole parameter space — any capacity,
//! loss rate, duplication rate, message count, and seed — and the
//! stabilization guarantee must hold from any scrambled start.

use proptest::prelude::*;
use sbs_link::DataLinkSim;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clean start: every message delivered exactly once, in order,
    /// regardless of channel parameters.
    #[test]
    fn prop_exactly_once_in_order(
        cap in 1usize..12,
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.3,
        k in 1u64..25,
        seed in any::<u64>(),
    ) {
        let mut dl = DataLinkSim::new(cap, loss, dup, seed);
        for m in 0..k {
            dl.sender.send(m);
        }
        prop_assert!(dl.run_until_idle(30_000_000), "link must drain");
        let expected: Vec<u64> = (0..k).collect();
        prop_assert_eq!(dl.delivered(), expected.as_slice());
    }

    /// Arbitrary initial configuration: after at most one sacrificial
    /// message, delivery is exact; spurious deliveries are bounded by the
    /// initial channel content plus the corrupted in-flight transfer.
    #[test]
    fn prop_stabilizes_from_garbage(
        cap in 1usize..10,
        loss in 0.0f64..0.3,
        k in 2u64..20,
        seed in any::<u64>(),
    ) {
        const GARBAGE: u64 = 1 << 32;
        let mut dl = DataLinkSim::new(cap, loss, 0.05, seed);
        dl.scramble(|r| GARBAGE + r.next_u64() % 1000);
        for m in 0..k {
            dl.sender.send(m);
        }
        prop_assert!(dl.run_until_idle(30_000_000), "link must drain");
        let real: Vec<u64> = dl
            .delivered()
            .iter()
            .copied()
            .filter(|&m| m < GARBAGE)
            .collect();
        let tail: Vec<u64> = real.iter().copied().filter(|&m| m >= 1).collect();
        prop_assert_eq!(tail, (1..k).collect::<Vec<_>>(),
            "from message 1 on, delivery must be exact; got {:?}", dl.delivered());
        prop_assert!(
            real.iter().filter(|&&m| m == 0).count() <= 1,
            "the sacrificial message may be lost but never duplicated"
        );
        let spurious = dl.delivered().iter().filter(|&&m| m >= GARBAGE).count();
        prop_assert!(spurious <= cap + 1, "spurious deliveries bounded by cap+1");
    }

    /// Mid-run corruption of both endpoints: everything after the next
    /// completed transfer is exact again.
    #[test]
    fn prop_recovers_from_midrun_corruption(
        cap in 1usize..8,
        seed in any::<u64>(),
    ) {
        use sbs_sim::DetRng;
        let mut dl = DataLinkSim::new(cap, 0.1, 0.05, seed);
        for m in 0..5u64 {
            dl.sender.send(m);
        }
        prop_assert!(dl.run_until_idle(30_000_000));
        let mut rng = DetRng::derive(seed, 1234);
        dl.sender.corrupt(&mut rng);
        dl.receiver.corrupt(&mut rng);
        for m in 100..108u64 {
            dl.sender.send(m);
        }
        prop_assert!(dl.run_until_idle(30_000_000));
        let after: Vec<u64> = dl
            .delivered()
            .iter()
            .copied()
            .filter(|&m| m > 100)
            .collect();
        prop_assert_eq!(after, (101..108).collect::<Vec<_>>());
    }
}
