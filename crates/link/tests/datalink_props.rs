//! Property tests for the footnote-3 data link: exactly-once in-order
//! delivery must hold across the whole parameter space — any capacity,
//! loss rate, duplication rate, message count, and seed — and the
//! stabilization guarantee must hold from any scrambled start.
//!
//! Cases are sampled deterministically from a seeded [`DetRng`] so every
//! failure reproduces exactly (the workspace carries no property-testing
//! dependency).

use sbs_link::DataLinkSim;
use sbs_sim::DetRng;

/// Clean start: every message delivered exactly once, in order, regardless
/// of channel parameters.
#[test]
fn prop_exactly_once_in_order() {
    let mut rng = DetRng::from_seed(0xDA7A);
    for case in 0..64u64 {
        let cap = rng.range_inclusive(1, 11) as usize;
        let loss = rng.next_f64() * 0.4;
        let dup = rng.next_f64() * 0.3;
        let k = rng.range_inclusive(1, 24);
        let seed = rng.next_u64();
        let mut dl = DataLinkSim::new(cap, loss, dup, seed);
        for m in 0..k {
            dl.sender.send(m);
        }
        assert!(
            dl.run_until_idle(30_000_000),
            "case {case}: link must drain"
        );
        let expected: Vec<u64> = (0..k).collect();
        assert_eq!(dl.delivered(), expected.as_slice(), "case {case}");
    }
}

/// Arbitrary initial configuration: after at most one sacrificial message,
/// delivery is exact; spurious deliveries are bounded by the initial
/// channel content plus the corrupted in-flight transfer.
#[test]
fn prop_stabilizes_from_garbage() {
    const GARBAGE: u64 = 1 << 32;
    let mut rng = DetRng::from_seed(0x6A5B);
    for case in 0..64u64 {
        let cap = rng.range_inclusive(1, 9) as usize;
        let loss = rng.next_f64() * 0.3;
        let k = rng.range_inclusive(2, 19);
        let seed = rng.next_u64();
        let mut dl = DataLinkSim::new(cap, loss, 0.05, seed);
        dl.scramble(|r| GARBAGE + r.next_u64() % 1000);
        for m in 0..k {
            dl.sender.send(m);
        }
        assert!(
            dl.run_until_idle(30_000_000),
            "case {case}: link must drain"
        );
        let real: Vec<u64> = dl
            .delivered()
            .iter()
            .copied()
            .filter(|&m| m < GARBAGE)
            .collect();
        let tail: Vec<u64> = real.iter().copied().filter(|&m| m >= 1).collect();
        assert_eq!(
            tail,
            (1..k).collect::<Vec<_>>(),
            "case {case}: from message 1 on, delivery must be exact; got {:?}",
            dl.delivered()
        );
        assert!(
            real.iter().filter(|&&m| m == 0).count() <= 1,
            "case {case}: the sacrificial message may be lost but never duplicated"
        );
        let spurious = dl.delivered().iter().filter(|&&m| m >= GARBAGE).count();
        assert!(
            spurious <= cap + 1,
            "case {case}: spurious deliveries bounded by cap+1"
        );
    }
}

/// Mid-run corruption of both endpoints: everything after the next
/// completed transfer is exact again.
#[test]
fn prop_recovers_from_midrun_corruption() {
    let mut rng = DetRng::from_seed(0xC0DE);
    for case in 0..64u64 {
        let cap = rng.range_inclusive(1, 7) as usize;
        let seed = rng.next_u64();
        let mut dl = DataLinkSim::new(cap, 0.1, 0.05, seed);
        for m in 0..5u64 {
            dl.sender.send(m);
        }
        assert!(dl.run_until_idle(30_000_000), "case {case}");
        let mut corrupt_rng = DetRng::derive(seed, 1234);
        dl.sender.corrupt(&mut corrupt_rng);
        dl.receiver.corrupt(&mut corrupt_rng);
        for m in 100..108u64 {
            dl.sender.send(m);
        }
        assert!(dl.run_until_idle(30_000_000), "case {case}");
        let after: Vec<u64> = dl
            .delivered()
            .iter()
            .copied()
            .filter(|&m| m > 100)
            .collect();
        assert_eq!(after, (101..108).collect::<Vec<_>>(), "case {case}");
    }
}
