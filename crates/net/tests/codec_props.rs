//! Seeded round-trip property tests for the canonical wire codec: every
//! [`StoreMsg`] variant, with both `Inline` and `Ref` payloads, across
//! hundreds of deterministically random shapes. Each case asserts the
//! two codec invariants: the encoded body is exactly
//! [`Message::wire_bytes`] long, and decode-then-re-encode reproduces
//! the bytes (the substitute for `PartialEq`, which the message types
//! deliberately do not implement).

use sbs_bulk::{BulkDigest, BulkRef, SharedBytes};
use sbs_core::{RegId, RegMsg, SeqVal};
use sbs_net::WireCodec;
use sbs_sim::{DetRng, Message, ProcessId};
use sbs_stamps::{RingSeq, PAPER_MODULUS};
use sbs_store::{ShardMap, StoreMsg, StorePayload, StoreVal, StoreWire};
use std::sync::Arc;

const CASES: u64 = 200;

fn codec() -> WireCodec {
    WireCodec::new(PAPER_MODULUS)
}

fn digest(rng: &mut DetRng) -> BulkDigest {
    BulkDigest([
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
        rng.next_u64(),
    ])
}

fn bytes(rng: &mut DetRng, max: u64) -> SharedBytes {
    let len = rng.range_inclusive(0, max) as usize;
    (0..len).map(|_| rng.next_u32() as u8).collect()
}

fn payload(rng: &mut DetRng) -> StorePayload<u64> {
    let wsn = rng.next_u64() as u128 % PAPER_MODULUS;
    let val = if rng.chance(0.5) {
        let mut map = ShardMap::new();
        for i in 0..rng.range_inclusive(0, 5) {
            map.insert(&format!("key{i}"), rng.next_u64());
        }
        StoreVal::Inline(Arc::new(map))
    } else {
        StoreVal::Ref(BulkRef {
            digest: digest(rng),
            len: rng.next_u64() >> 20,
        })
    };
    SeqVal::new(RingSeq::new(wsn, PAPER_MODULUS), val)
}

fn reg_msg(rng: &mut DetRng) -> RegMsg<StorePayload<u64>> {
    match rng.range_inclusive(0, 5) {
        0 => RegMsg::Write {
            reg: RegId(rng.next_u32() % 64),
            tag: rng.next_u64(),
            val: payload(rng),
        },
        1 => RegMsg::NewHelpVal {
            reg: RegId(rng.next_u32() % 64),
            tag: rng.next_u64(),
            val: payload(rng),
            readers: (0..rng.range_inclusive(0, 6))
                .map(|_| ProcessId(rng.next_u32() % 32))
                .collect(),
        },
        2 => RegMsg::Read {
            reg: RegId(rng.next_u32() % 64),
            tag: rng.next_u64(),
            new_read: rng.chance(0.5),
        },
        3 => RegMsg::SsAck {
            tag: rng.next_u64(),
        },
        4 => RegMsg::AckWrite {
            reg: RegId(rng.next_u32() % 64),
            helping: (0..rng.range_inclusive(0, 4))
                .map(|_| {
                    let val = rng.chance(0.5).then(|| payload(rng));
                    (ProcessId(rng.next_u32() % 32), val)
                })
                .collect(),
        },
        _ => RegMsg::AckRead {
            reg: RegId(rng.next_u32() % 64),
            last: payload(rng),
            helping: rng.chance(0.5).then(|| payload(rng)),
        },
    }
}

/// Encode/decode/re-encode `msg`, asserting both codec invariants.
fn round_trip(msg: &StoreWire<u64>) {
    let c = codec();
    let frame = c.encode(msg);
    assert_eq!(
        frame.len() as u64,
        6 + msg.wire_bytes(),
        "encoded body must be exactly wire_bytes for {}",
        msg.label()
    );
    let (decoded, consumed) = c
        .decode_frame::<u64>(&frame)
        .unwrap_or_else(|e| panic!("{} failed to decode: {e}", msg.label()));
    assert_eq!(consumed, frame.len(), "decode must consume the full frame");
    assert_eq!(
        c.encode(&decoded),
        frame,
        "re-encode must reproduce the bytes for {}",
        msg.label()
    );
}

#[test]
fn register_batches_round_trip() {
    let mut rng = DetRng::derive(0xC0DEC, 1);
    for _ in 0..CASES {
        let batch: Vec<_> = (0..rng.range_inclusive(1, 8))
            .map(|_| reg_msg(&mut rng))
            .collect();
        round_trip(&StoreMsg::Batch(batch));
    }
}

#[test]
fn bulk_plane_round_trips() {
    let mut rng = DetRng::derive(0xC0DEC, 2);
    for _ in 0..CASES {
        round_trip(&StoreMsg::BulkPut {
            shard: rng.next_u32() % 16,
            digest: digest(&mut rng),
            bytes: bytes(&mut rng, 512),
        });
        round_trip(&StoreMsg::BulkPutAck {
            shard: rng.next_u32() % 16,
            digest: digest(&mut rng),
        });
        round_trip(&StoreMsg::BulkGet {
            shard: rng.next_u32() % 16,
            digest: digest(&mut rng),
            tag: rng.next_u64(),
        });
        let answered = rng.chance(0.5);
        round_trip(&StoreMsg::BulkGetAck {
            shard: rng.next_u32() % 16,
            digest: digest(&mut rng),
            tag: rng.next_u64(),
            bytes: answered.then(|| bytes(&mut rng, 512)),
        });
    }
}

#[test]
fn fragment_plane_round_trips() {
    let mut rng = DetRng::derive(0xC0DEC, 3);
    for _ in 0..CASES {
        let proof_len = rng.range_inclusive(0, 5);
        round_trip(&StoreMsg::FragPut {
            shard: rng.next_u32() % 16,
            root: digest(&mut rng),
            index: rng.next_u32() % 9,
            total: 9,
            bytes: bytes(&mut rng, 256),
            proof: (0..proof_len).map(|_| digest(&mut rng)).collect(),
        });
        round_trip(&StoreMsg::FragPutAck {
            shard: rng.next_u32() % 16,
            root: digest(&mut rng),
            index: rng.next_u32() % 9,
        });
        let answered = rng.chance(0.5);
        round_trip(&StoreMsg::FragGetAck {
            shard: rng.next_u32() % 16,
            root: digest(&mut rng),
            tag: rng.next_u64(),
            frag: answered.then(|| {
                (
                    rng.next_u32() % 9,
                    bytes(&mut rng, 256),
                    (0..rng.range_inclusive(0, 5))
                        .map(|_| digest(&mut rng))
                        .collect(),
                )
            }),
        });
    }
}

#[test]
fn repair_plane_round_trips() {
    let mut rng = DetRng::derive(0xC0DEC, 4);
    for _ in 0..CASES {
        round_trip(&StoreMsg::RepairRequest {
            shard: rng.next_u32() % 16,
            digest: digest(&mut rng),
        });
        let blob = rng.chance(0.5);
        let coded = rng.chance(0.5);
        round_trip(&StoreMsg::RepairReply {
            shard: rng.next_u32() % 16,
            digest: digest(&mut rng),
            bytes: blob.then(|| bytes(&mut rng, 512)),
            frag: coded.then(|| {
                (
                    rng.next_u32() % 9,
                    bytes(&mut rng, 256),
                    (0..rng.range_inclusive(0, 5))
                        .map(|_| digest(&mut rng))
                        .collect(),
                )
            }),
        });
        round_trip(&StoreMsg::DigestSummary {
            entries: (0..rng.range_inclusive(0, 40))
                .map(|_| (rng.next_u32() % 16, digest(&mut rng)))
                .collect(),
        });
    }
}

#[test]
fn zero_length_bodies_round_trip() {
    // The degenerate shapes: empty batch, empty blob, empty fragment
    // with an empty proof, unanswered gets.
    round_trip(&StoreMsg::Batch(Vec::new()));
    round_trip(&StoreMsg::BulkPut {
        shard: 0,
        digest: BulkDigest([0; 4]),
        bytes: SharedBytes::from(&[][..]),
    });
    round_trip(&StoreMsg::BulkGetAck {
        shard: 0,
        digest: BulkDigest([0; 4]),
        tag: 0,
        bytes: None,
    });
    round_trip(&StoreMsg::FragPut {
        shard: 0,
        root: BulkDigest([0; 4]),
        index: 0,
        total: 1,
        bytes: SharedBytes::from(&[][..]),
        proof: Vec::new(),
    });
    round_trip(&StoreMsg::FragGetAck {
        shard: 0,
        root: BulkDigest([0; 4]),
        tag: 0,
        frag: None,
    });
    round_trip(&StoreMsg::RepairReply {
        shard: 0,
        digest: BulkDigest([0; 4]),
        bytes: None,
        frag: None,
    });
    round_trip(&StoreMsg::DigestSummary {
        entries: Vec::new(),
    });
}
