//! Adversarial-decode tests: the codec facing a malicious or broken
//! peer. Truncations, flipped length prefixes, over-cap lengths, and
//! random garble must all come back as decode errors — never a panic,
//! never an attacker-sized allocation. Deterministically seeded, so a
//! failure reproduces.

use sbs_bulk::{BulkDigest, BulkRef, SharedBytes};
use sbs_core::{RegId, RegMsg, SeqVal};
use sbs_net::{read_frame, DecodeError, WireCodec, MAX_FRAME};
use sbs_sim::DetRng;
use sbs_stamps::{RingSeq, PAPER_MODULUS};
use sbs_store::{ShardMap, StoreMsg, StorePayload, StoreVal, StoreWire};
use std::io;
use std::sync::Arc;

fn codec() -> WireCodec {
    WireCodec::new(PAPER_MODULUS)
}

fn payload(wsn: u128) -> StorePayload<u64> {
    let mut map = ShardMap::new();
    map.insert("key0", 7);
    map.insert("key1", 11);
    SeqVal::new(
        RingSeq::new(wsn, PAPER_MODULUS),
        StoreVal::Inline(Arc::new(map)),
    )
}

/// A representative frame of every kind, to truncate and garble.
fn corpus() -> Vec<Vec<u8>> {
    let c = codec();
    let msgs: Vec<StoreWire<u64>> = vec![
        StoreMsg::Batch(vec![
            RegMsg::Write {
                reg: RegId(2),
                tag: 31,
                val: payload(5),
            },
            RegMsg::SsAck { tag: 31 },
            RegMsg::AckRead {
                reg: RegId(2),
                last: payload(6),
                helping: Some(payload(4)),
            },
        ]),
        StoreMsg::BulkPut {
            shard: 1,
            digest: BulkDigest([1, 2, 3, 4]),
            bytes: SharedBytes::from(&b"0123456789abcdef"[..]),
        },
        StoreMsg::BulkGetAck {
            shard: 1,
            digest: BulkDigest([1, 2, 3, 4]),
            tag: 9,
            bytes: Some(SharedBytes::from(&b"0123456789abcdef"[..])),
        },
        StoreMsg::FragPut {
            shard: 1,
            root: BulkDigest([5, 6, 7, 8]),
            index: 2,
            total: 9,
            bytes: SharedBytes::from(&b"frag"[..]),
            proof: vec![BulkDigest([9, 9, 9, 9]); 3],
        },
        StoreMsg::FragGetAck {
            shard: 1,
            root: BulkDigest([5, 6, 7, 8]),
            tag: 9,
            frag: Some((
                2,
                SharedBytes::from(&b"frag"[..]),
                vec![BulkDigest([9, 9, 9, 9]); 3],
            )),
        },
        StoreMsg::Batch(vec![RegMsg::Write {
            reg: RegId(0),
            tag: 1,
            val: SeqVal::new(
                RingSeq::new(1, PAPER_MODULUS),
                StoreVal::Ref(BulkRef {
                    digest: BulkDigest([1, 1, 1, 1]),
                    len: 4096,
                }),
            ),
        }]),
        StoreMsg::RepairRequest {
            shard: 1,
            digest: BulkDigest([1, 2, 3, 4]),
        },
        StoreMsg::RepairReply {
            shard: 1,
            digest: BulkDigest([1, 2, 3, 4]),
            bytes: Some(SharedBytes::from(&b"0123456789abcdef"[..])),
            frag: None,
        },
        StoreMsg::RepairReply {
            shard: 1,
            digest: BulkDigest([5, 6, 7, 8]),
            bytes: None,
            frag: Some((
                2,
                SharedBytes::from(&b"frag"[..]),
                vec![BulkDigest([9, 9, 9, 9]); 3],
            )),
        },
        StoreMsg::DigestSummary {
            entries: vec![(0, BulkDigest([1, 2, 3, 4])), (5, BulkDigest([5, 6, 7, 8]))],
        },
    ];
    msgs.iter().map(|m| c.encode(m)).collect()
}

#[test]
fn every_truncation_is_refused_without_panicking() {
    let c = codec();
    for frame in corpus() {
        // Cut the frame at every possible point; none may decode, since
        // every layout is end-delimited and the prefix announces the
        // full payload.
        for cut in 0..frame.len() {
            let err = c
                .decode_frame::<u64>(&frame[..cut])
                .expect_err("truncated frame must not decode");
            assert!(
                matches!(err, DecodeError::Truncated),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }
}

#[test]
fn flipped_length_prefixes_are_refused() {
    let c = codec();
    for frame in corpus() {
        for bit in 0..32 {
            let mut bad = frame.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            // A changed prefix either announces more bytes than follow
            // (Truncated), crosses the cap (Oversized), or shortens the
            // payload so the body no longer parses cleanly. Decoding a
            // *shorter* valid payload can succeed — but then the frame
            // consumption must reflect the shorter length, never the
            // original, and the inner body must still be self-consistent.
            match c.decode_frame::<u64>(&bad) {
                Err(_) => {}
                Ok((msg, consumed)) => {
                    assert!(consumed < frame.len());
                    let reenc = c.encode(&msg);
                    assert_eq!(reenc.len(), consumed, "consumed must match re-encode");
                }
            }
        }
    }
}

#[test]
fn over_cap_lengths_are_refused_before_allocation() {
    let c = codec();
    // Announce payloads from just over the cap up to u32::MAX; decode
    // must refuse from the prefix alone (4 trailing bytes exist, so an
    // implementation that tried to allocate/read would fail differently).
    for len in [
        (MAX_FRAME + 1) as u32,
        (MAX_FRAME * 2) as u32,
        u32::MAX / 2,
        u32::MAX,
    ] {
        let mut frame = len.to_le_bytes().to_vec();
        frame.extend_from_slice(&[0u8; 4]);
        let err = c
            .decode_frame::<u64>(&frame)
            .expect_err("over-cap length must be refused");
        assert!(
            matches!(err, DecodeError::Oversized { len: l } if l == u64::from(len)),
            "unexpected error {err:?}"
        );
        // The streaming reader refuses identically, as io::InvalidData.
        let mut stream: &[u8] = &frame;
        let io_err = read_frame(&mut stream).expect_err("reader must refuse");
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }
}

#[test]
fn random_garble_never_panics() {
    let c = codec();
    let mut rng = DetRng::derive(0xBADBAD, 0);
    // Pure noise frames with plausible prefixes.
    for _ in 0..2000 {
        let len = rng.range_inclusive(0, 96) as usize;
        let mut frame = (len as u32).to_le_bytes().to_vec();
        for _ in 0..len {
            frame.push(rng.next_u32() as u8);
        }
        if let Ok((msg, consumed)) = c.decode_frame::<u64>(&frame) {
            // Garble that happens to parse must at least be canonical:
            // re-encoding reproduces exactly the consumed bytes.
            assert_eq!(c.encode(&msg), frame[..consumed].to_vec());
        }
    }
}

#[test]
fn bit_flips_in_valid_bodies_never_panic() {
    let c = codec();
    let mut rng = DetRng::derive(0xBADBAD, 1);
    for frame in corpus() {
        for _ in 0..300 {
            let mut bad = frame.clone();
            let bit = rng.range_inclusive(32, (frame.len() as u64) * 8 - 1) as usize;
            bad[bit / 8] ^= 1 << (bit % 8);
            if let Ok((msg, consumed)) = c.decode_frame::<u64>(&bad) {
                assert_eq!(consumed, bad.len());
                assert_eq!(c.encode(&msg), bad, "accepted frames must be canonical");
            }
        }
    }
}

#[test]
fn wrong_version_is_refused() {
    let c = codec();
    let msg: StoreWire<u64> = StoreMsg::Batch(Vec::new());
    let mut frame = c.encode(&msg);
    frame[4] = 7; // version byte
    assert!(matches!(
        c.decode_frame::<u64>(&frame),
        Err(DecodeError::BadVersion(7))
    ));
}

#[test]
fn unknown_kind_is_refused() {
    let c = codec();
    let msg: StoreWire<u64> = StoreMsg::Batch(Vec::new());
    let mut frame = c.encode(&msg);
    frame[5] = 0xEE; // kind byte
    assert!(matches!(
        c.decode_frame::<u64>(&frame),
        Err(DecodeError::BadKind(0xEE))
    ));
}

#[test]
fn trailing_bytes_inside_the_payload_are_refused() {
    let c = codec();
    let msg: StoreWire<u64> = StoreMsg::BulkPutAck {
        shard: 0,
        digest: BulkDigest([1, 2, 3, 4]),
    };
    let mut frame = c.encode(&msg);
    // Grow the announced payload by one junk byte: a fixed-size body
    // with leftovers is non-canonical.
    frame.push(0);
    let len = (frame.len() - 4) as u32;
    frame[0..4].copy_from_slice(&len.to_le_bytes());
    assert!(c.decode_frame::<u64>(&frame).is_err());
}
