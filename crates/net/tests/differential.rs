//! Differential sim ≡ socket verification: the same declarative
//! workload, run once on the deterministic simulator and once over real
//! loopback TCP, must produce per-key histories that agree on
//! everything the workload determines (key set, write sequences, op
//! counts) — and *both* executions must independently pass the per-key
//! atomicity check. The socket run additionally keeps the online
//! [`ConsistencyMonitor`](sbs_sim::ConsistencyMonitor) attached and
//! must finish with zero violations.

use sbs_check::{equivalent_write_histories, History};
use sbs_net::NetStoreSystem;
use sbs_sim::SimDuration;
use sbs_store::{
    FaultPlan, KeyDist, LoopMode, OpMix, ReshardPlan, StoreBuilder, StoreSystem, Workload,
};
use std::collections::BTreeMap;

fn workload(ops: u64, mix: OpMix, seed: u64) -> Workload {
    Workload {
        ops,
        keys: 32,
        mix,
        dist: KeyDist::Zipfian { theta: 0.99 },
        loop_mode: LoopMode::Closed,
        seed,
        faults: FaultPlan::none(),
    }
}

fn sim_histories(sys: &StoreSystem<u64>) -> BTreeMap<String, History<Option<u64>>> {
    sys.keys_touched()
        .into_iter()
        .map(|k| {
            let h = sys.history_for_key(&k);
            (k, h)
        })
        .collect()
}

/// Runs `w` on the simulator and on loopback TCP from the same builder,
/// then holds both executions to the full standard.
fn assert_sim_socket_equivalent(builder: &StoreBuilder, w: &Workload) {
    // Simulator execution (virtual time, deterministic).
    let (sim_report, sim_sys) = w.run(builder);
    assert_eq!(sim_report.completed, w.ops, "sim run must complete");
    let sim_checked = sim_sys
        .check_per_key_atomicity()
        .expect("sim histories must be atomic");

    // Socket execution (wall clock, real TCP).
    let mut net: NetStoreSystem<u64> = NetStoreSystem::deploy(builder).expect("deploy");
    let net_report = net.run_workload(w, |id| id);
    assert_eq!(net_report.completed, w.ops, "socket run must complete");
    let net_checked = net
        .check_per_key_atomicity()
        .expect("socket histories must be atomic");
    assert_eq!(sim_checked, net_checked, "same number of keys checked");

    assert!(
        net.monitor_violations().is_empty(),
        "online monitor flagged the socket run: {:?}",
        net.monitor_violations()
    );
    assert_eq!(
        net_report.decode_rejects, 0,
        "no frame may fail decoding between honest nodes"
    );
    assert_eq!(
        net_report.transport_drops, 0,
        "no loopback message may be dropped"
    );

    // The differential core: write sequences and op counts must agree.
    let keys = equivalent_write_histories(&sim_histories(&sim_sys), &net.histories())
        .expect("sim and socket executions diverged");
    assert_eq!(keys, sim_checked);
    assert!(keys > 0, "workload must touch at least one key");
}

#[test]
fn socket_put_get_round_trips() {
    // Smallest end-to-end sanity: one put, one get, over real TCP.
    let builder = StoreBuilder::asynchronous(1).seed(3).monitor();
    let mut net: NetStoreSystem<u64> = NetStoreSystem::deploy(&builder).expect("deploy");
    net.put("alpha", 41);
    let done = net.await_completions(std::time::Duration::from_secs(30));
    assert_eq!(done.len(), 1, "put must complete");
    net.get(0, "alpha");
    let done = net.await_completions(std::time::Duration::from_secs(30));
    assert_eq!(done.len(), 1, "get must complete");
    let h = net.history_for_key("alpha");
    assert_eq!(h.reads().count(), 1);
    assert_eq!(h.writes().count(), 1);
    net.check_per_key_atomicity().expect("atomic");
    assert!(net.monitor_violations().is_empty());
}

#[test]
fn ycsb_a_async_n9_sim_and_socket_agree() {
    // The paper's asynchronous deployment at t = 1 (n = 8t + 1 = 9),
    // sharded, update-heavy.
    let builder = StoreBuilder::asynchronous(1)
        .shards(4)
        .writers(2)
        .extra_readers(1)
        .seed(7)
        .monitor();
    let w = workload(1000, OpMix::ycsb_a(), 11);
    assert_sim_socket_equivalent(&builder, &w);
}

#[test]
fn ycsb_b_sync_n4_sim_and_socket_agree() {
    // The synchronous deployment at t = 1 (n = 3t + 1 = 4): timers
    // carry the round structure, serviced in wall-clock time on the
    // socket backend. The 5 ms link bound is three orders of magnitude
    // above loopback latency, so no honest server is ever suspected.
    let builder = StoreBuilder::synchronous(1, SimDuration::millis(5))
        .shards(2)
        .writers(2)
        .seed(13)
        .monitor();
    let w = workload(1000, OpMix::ycsb_b(), 17);
    assert_sim_socket_equivalent(&builder, &w);
}

#[test]
fn live_reshard_on_sockets_matches_static_sim_run() {
    // The acceptance bar for live resharding on the socket backend: a
    // run that migrates shard ownership *mid-workload* over real TCP
    // must be observationally identical — per-key write sequences and
    // op counts — to the same-seed run that never resharded, with the
    // online monitor silent throughout the handoff.
    let builder = StoreBuilder::asynchronous(1)
        .shards(4)
        .writers(2)
        .seed(41)
        .monitor();
    let mut w = workload(600, OpMix::ycsb_a(), 43);

    // Static same-seed baseline on the deterministic simulator.
    let (sim_report, sim_sys) = w.run(&builder);
    assert_eq!(sim_report.completed, w.ops, "sim baseline must complete");
    sim_sys
        .check_per_key_atomicity()
        .expect("sim baseline must be atomic");

    // Socket run with a dual-commit handoff ~50 ms in: writer 1 retires
    // and every shard it owned migrates to writer 0 while the YCSB-A
    // mix is in flight.
    let mut net: NetStoreSystem<u64> = NetStoreSystem::deploy(&builder).expect("deploy");
    let plan = ReshardPlan::merge_writer(net.routing_table(), 1, 0);
    w.faults.reshards = vec![(SimDuration::millis(50), plan)];
    let report = net.run_workload(&w, |id| id);
    assert_eq!(
        report.completed, w.ops,
        "resharded socket run must complete"
    );
    assert!(!net.reshard_active(), "the handoff must fully drain");
    assert_eq!(net.routing_table().epoch(), 1, "the epoch must flip");
    assert!(
        net.routing_table().shards_of_writer(1).is_empty(),
        "the retired writer must own nothing"
    );
    net.check_per_key_atomicity()
        .expect("resharded socket histories must be atomic");
    assert!(
        net.monitor_violations().is_empty(),
        "online monitor flagged the handoff: {:?}",
        net.monitor_violations()
    );

    let keys = equivalent_write_histories(&sim_histories(&sim_sys), &net.histories())
        .expect("resharded socket run diverged from the static sim run");
    assert!(keys > 0, "workload must touch at least one key");
}

#[test]
fn bulk_plane_survives_the_wire() {
    // The content-addressed bulk plane exercises BULK_PUT / BULK_GET
    // frames (variable-length blob bodies) over real sockets.
    let builder = StoreBuilder::asynchronous(1)
        .bulk()
        .shards(2)
        .writers(1)
        .seed(23)
        .monitor();
    let w = workload(300, OpMix::ycsb_a(), 29);
    assert_sim_socket_equivalent(&builder, &w);
}

#[test]
fn coded_plane_survives_the_wire() {
    // The erasure-coded plane exercises FragPut / FragPutAck /
    // FragGetAck (fragments plus Merkle paths) over real sockets.
    let builder = StoreBuilder::asynchronous(1)
        .bulk_coded(2)
        .shards(2)
        .writers(1)
        .seed(31)
        .monitor();
    let w = workload(300, OpMix::ycsb_a(), 37);
    assert_sim_socket_equivalent(&builder, &w);
}
