//! The std-TCP [`Transport`] backend and its receive fabric.
//!
//! Topology: every node owns one [`TcpListener`]; every directed peer
//! link `src → dst` is one outbound [`TcpStream`] owned by `src`'s
//! [`TcpTransport`]. TCP keeps bytes ordered within a connection, so
//! each link is FIFO — the same per-ordered-pair assumption the paper
//! (and the in-process runtime) makes. Writes are blocking and happen
//! on the sending node's own thread; a failed link is retried with
//! bounded backoff and otherwise *drops* the message, which the
//! protocols already tolerate as message loss.
//!
//! The [`NetFabric`] owns the inbound side: one accept thread per
//! listener, one reader thread per accepted connection. A reader
//! decodes frames with the [`WireCodec`] and injects each message into
//! the hosting [`ThreadRuntime`](sbs_sim::ThreadRuntime) through its
//! [`MsgInjector`]. A frame that fails to decode bumps a reject counter
//! and kills that connection — a Byzantine peer can waste a connection,
//! not the process.
//!
//! Each connection opens with an 8-byte preamble: a magic word and the
//! sender's process id. The claimed id is **trusted**, exactly like
//! [`ThreadRuntime::inject`](sbs_sim::ThreadRuntime::inject)'s claimed
//! sender — authentication is out of scope here; the protocol layer is
//! the part that tolerates Byzantine peers.

use crate::codec::{read_frame, write_frame, WireCodec};
use sbs_bulk::BulkCodec;
use sbs_core::Payload;
use sbs_sim::{MsgInjector, ProcessId, Transport};
use sbs_store::{StoreOut, StoreWire};
use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// First 4 bytes of every connection ("SBSN"), so a stray client
/// connecting to the port is detected before any frame is parsed.
const PREAMBLE_MAGIC: u32 = u32::from_le_bytes(*b"SBSN");

/// Connect attempts per send before the link declares the message lost.
const CONNECT_ATTEMPTS: u32 = 5;
/// Backoff before connect attempt `i` (doubling): 1, 2, 4, 8, 16 ms.
const CONNECT_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// The outbound half of one node's links: a lazily connected
/// [`TcpStream`] per peer, with bounded reconnect. One instance lives on
/// each node thread (handed to
/// [`ThreadRuntime::spawn_with_transport`](sbs_sim::ThreadRuntime::spawn_with_transport)),
/// so no locking is involved on the send path.
pub struct TcpTransport<V> {
    me: ProcessId,
    peers: Vec<SocketAddr>,
    conns: Vec<Option<TcpStream>>,
    codec: WireCodec,
    /// Messages dropped after exhausting reconnect attempts, shared
    /// across the fleet's transports for the harness to report.
    drops: Arc<AtomicU64>,
    _values: PhantomData<fn() -> V>,
}

impl<V> std::fmt::Debug for TcpTransport<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("me", &self.me)
            .field("peers", &self.peers.len())
            .finish_non_exhaustive()
    }
}

impl<V> TcpTransport<V> {
    /// A transport for node `me` reaching the peers at `peers` (indexed
    /// by [`ProcessId::index`]). `drops` is the shared lost-message
    /// counter.
    pub fn new(
        me: ProcessId,
        peers: Vec<SocketAddr>,
        codec: WireCodec,
        drops: Arc<AtomicU64>,
    ) -> Self {
        let conns = peers.iter().map(|_| None).collect();
        TcpTransport {
            me,
            peers,
            conns,
            codec,
            drops,
            _values: PhantomData,
        }
    }

    fn connect(&self, to: usize) -> io::Result<TcpStream> {
        let mut last_err = None;
        for attempt in 0..CONNECT_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(CONNECT_BACKOFF_BASE * (1 << (attempt - 1)));
            }
            match TcpStream::connect(self.peers[to]) {
                Ok(mut stream) => {
                    stream.set_nodelay(true)?;
                    let mut preamble = [0u8; 8];
                    preamble[..4].copy_from_slice(&PREAMBLE_MAGIC.to_le_bytes());
                    preamble[4..].copy_from_slice(&self.me.0.to_le_bytes());
                    stream.write_all(&preamble)?;
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one connect attempt"))
    }

    fn write_to(&mut self, to: usize, frame: &[u8]) -> io::Result<()> {
        if self.conns[to].is_none() {
            self.conns[to] = Some(self.connect(to)?);
        }
        let stream = self.conns[to].as_mut().expect("just connected");
        write_frame(stream, frame)
    }
}

impl<V> Transport<StoreWire<V>> for TcpTransport<V>
where
    V: Payload + BulkCodec + Send + Sync,
{
    fn send(&mut self, _from: ProcessId, to: ProcessId, msg: StoreWire<V>) {
        let frame = self.codec.encode(&msg);
        let to = to.index();
        if to >= self.peers.len() {
            self.drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.write_to(to, &frame).is_ok() {
            return;
        }
        // The stream died (peer restarted, kernel buffer torn down):
        // reconnect once — with its own bounded backoff — then give the
        // message up as link loss.
        self.conns[to] = None;
        if self.write_to(to, &frame).is_err() {
            self.conns[to] = None;
            self.drops.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The inbound fabric: every node's listener plus the accept and reader
/// threads feeding decoded messages back into the hosting runtime.
///
/// Build with [`NetFabric::bind`] (which fixes the fleet's addresses),
/// spawn the runtime with [`TcpTransport`]s pointed at
/// [`NetFabric::addrs`], then call [`NetFabric::start`] with the
/// runtime's injectors. Dropping the fabric shuts every thread down;
/// drop the [`ThreadRuntime`](sbs_sim::ThreadRuntime) *first* so node
/// threads stop writing before their peers' readers vanish.
pub struct NetFabric {
    listeners: Vec<TcpListener>,
    addrs: Vec<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    /// Accepted streams, registered so shutdown can unblock their readers.
    accepted: Arc<Mutex<Vec<TcpStream>>>,
    rejects: Arc<AtomicU64>,
    accept_handles: Vec<JoinHandle<()>>,
    reader_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for NetFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetFabric")
            .field("nodes", &self.addrs.len())
            .finish_non_exhaustive()
    }
}

impl NetFabric {
    /// Binds one loopback listener per node and fixes the fleet's
    /// addresses (ephemeral ports — parallel deployments never collide).
    pub fn bind(nodes: usize) -> io::Result<Self> {
        let mut listeners = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(listener.local_addr()?);
            listeners.push(listener);
        }
        Ok(NetFabric {
            listeners,
            addrs,
            shutdown: Arc::new(AtomicBool::new(false)),
            accepted: Arc::new(Mutex::new(Vec::new())),
            rejects: Arc::new(AtomicU64::new(0)),
            accept_handles: Vec::new(),
            reader_handles: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// The fleet's socket addresses, indexed by [`ProcessId::index`].
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Frames that failed to decode (and the connections they killed).
    pub fn decode_rejects(&self) -> u64 {
        self.rejects.load(Ordering::Relaxed)
    }

    /// Starts the accept and reader threads, delivering every decoded
    /// inbound message to its node through `injectors` (one per node, in
    /// [`ProcessId`] order).
    ///
    /// # Panics
    ///
    /// Panics if `injectors` does not match the fleet bound by
    /// [`NetFabric::bind`], or if called twice.
    pub fn start<V>(
        &mut self,
        codec: WireCodec,
        injectors: Vec<MsgInjector<StoreWire<V>, StoreOut<V>>>,
    ) where
        V: Payload + BulkCodec + Send + Sync,
    {
        assert_eq!(
            injectors.len(),
            self.addrs.len(),
            "one injector per bound node"
        );
        assert!(
            !self.listeners.is_empty() || self.addrs.is_empty(),
            "fabric already started"
        );
        for (i, (listener, injector)) in self.listeners.drain(..).zip(injectors).enumerate() {
            let shutdown = Arc::clone(&self.shutdown);
            let accepted = Arc::clone(&self.accepted);
            let rejects = Arc::clone(&self.rejects);
            let reader_handles = Arc::clone(&self.reader_handles);
            let handle = std::thread::Builder::new()
                .name(format!("sbs-net-accept-{i}"))
                .spawn(move || loop {
                    let stream = match listener.accept() {
                        Ok((stream, _)) => stream,
                        Err(_) => return,
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Ok(clone) = stream.try_clone() {
                        accepted.lock().expect("accepted registry").push(clone);
                    }
                    let injector = injector.clone();
                    let codec = codec;
                    let rejects = Arc::clone(&rejects);
                    let reader = std::thread::Builder::new()
                        .name(format!("sbs-net-read-{i}"))
                        .spawn(move || reader_main::<V>(stream, codec, injector, rejects))
                        .expect("failed to spawn reader thread");
                    reader_handles.lock().expect("reader registry").push(reader);
                })
                .expect("failed to spawn accept thread");
            self.accept_handles.push(handle);
        }
    }
}

impl Drop for NetFabric {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock readers: half-close every accepted stream.
        for stream in self.accepted.lock().expect("accepted registry").drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock accept threads: a throwaway connection each (they
        // re-check the shutdown flag right after accept returns).
        for addr in &self.addrs {
            let _ = TcpStream::connect(addr);
        }
        for handle in self.accept_handles.drain(..) {
            let _ = handle.join();
        }
        for handle in self
            .reader_handles
            .lock()
            .expect("reader registry")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// One connection's read loop: preamble, then frames until the stream
/// closes or a frame refuses to decode.
fn reader_main<V>(
    mut stream: TcpStream,
    codec: WireCodec,
    injector: MsgInjector<StoreWire<V>, StoreOut<V>>,
    rejects: Arc<AtomicU64>,
) where
    V: Payload + BulkCodec + Send + Sync,
{
    let mut preamble = [0u8; 8];
    if stream.read_exact(&mut preamble).is_err() {
        return; // shutdown poke or stray connect — nothing was claimed
    }
    let magic = u32::from_le_bytes(preamble[..4].try_into().expect("4 bytes"));
    if magic != PREAMBLE_MAGIC {
        rejects.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let from = ProcessId(u32::from_le_bytes(
        preamble[4..].try_into().expect("4 bytes"),
    ));
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean close
            Err(_) => {
                // Torn frame or an over-cap length prefix.
                rejects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        match codec.decode_payload::<V>(&payload) {
            Ok(msg) => injector.inject(from, msg),
            Err(_) => {
                // A peer speaking garbage loses its connection; if it
                // was an honest peer's torn write, it will reconnect.
                rejects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}
