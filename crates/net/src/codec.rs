//! The canonical [`StoreMsg`] wire codec: length-prefixed frames, a
//! versioned header, and exact byte accounting.
//!
//! Inside the simulator messages travel as Rust values and
//! [`Message::wire_bytes`](sbs_sim::Message::wire_bytes) is an
//! *estimate* used for byte metering. On a real socket the estimate
//! becomes a contract: every variant here encodes to **exactly**
//! `wire_bytes()` body bytes, so the byte traffic a socket deployment
//! puts on the wire is the byte traffic the sim benches have been
//! reporting all along (modulo the fixed 6-byte frame header, which is
//! transport overhead and deliberately not counted).
//!
//! The decoder treats the peer as Byzantine, because on a real wire it
//! may be:
//!
//! - the frame length is checked against [`MAX_FRAME`] **before** any
//!   allocation, so a malicious length prefix cannot force unbounded
//!   memory;
//! - every field with an illegal encoding (a wsn outside the ring, a
//!   non-boolean flag, an unsorted shard map, a non-zero reserved
//!   header field) is a [`DecodeError`], never a panic;
//! - counted substructures (batch entries, helping pairs, Merkle
//!   proofs) are decoded against the bytes actually present — counts
//!   never pre-size an allocation.
//!
//! ## Frame layout
//!
//! ```text
//! frame   := len:u32le payload            (len = payload length ≤ MAX_FRAME)
//! payload := version:u8 kind:u8 body      (body length == msg.wire_bytes())
//! ```
//!
//! All integers are little-endian, matching `sbs_bulk`'s [`BulkCodec`].
//! Variable-length tails (bulk bytes, Merkle proofs, batch contents)
//! are delimited by the frame end rather than redundant inner lengths —
//! which is exactly how `wire_bytes` accounts them.

use sbs_bulk::{get_u32, get_u64, put_u32, put_u64, BulkCodec, BulkDigest, BulkRef, SharedBytes};
use sbs_core::{Payload, RegId, RegMsg, SeqVal};
use sbs_stamps::RingSeq;
use sbs_store::{RoutingEpoch, ShardMap, StoreMsg, StorePayload, StoreVal, StoreWire};
use std::io::{self, Read, Write};
use std::sync::Arc;

/// The codec version byte every payload starts with.
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on a frame's payload length: 16 MiB. A peer announcing more
/// is rejected before any allocation happens. Generous relative to real
/// traffic — the largest legitimate frames are bulk-plane shard maps,
/// which the benches keep in the kilobytes.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a frame or payload failed to decode. Every malformed input maps
/// here — the decoder has no panicking paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the encoding did.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The announced payload length.
        len: u64,
    },
    /// Unknown codec version byte.
    BadVersion(u8),
    /// Unknown message kind byte.
    BadKind(u8),
    /// A field holds an illegal encoding (out-of-ring wsn, non-boolean
    /// flag, unsorted map, non-zero reserved field, …).
    Malformed(&'static str),
    /// The payload decoded but bytes were left over.
    Trailing,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::Oversized { len } => {
                write!(f, "announced payload of {len} bytes exceeds MAX_FRAME")
            }
            DecodeError::BadVersion(v) => write!(f, "unknown codec version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k}"),
            DecodeError::Malformed(what) => write!(f, "malformed field: {what}"),
            DecodeError::Trailing => write!(f, "trailing bytes after payload"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Message kind bytes (payload byte 1).
const KIND_BATCH: u8 = 0;
const KIND_BULK_PUT: u8 = 1;
const KIND_BULK_PUT_ACK: u8 = 2;
const KIND_BULK_GET: u8 = 3;
const KIND_BULK_GET_ACK: u8 = 4;
const KIND_FRAG_PUT: u8 = 5;
const KIND_FRAG_PUT_ACK: u8 = 6;
const KIND_FRAG_GET_ACK: u8 = 7;
const KIND_REPAIR_REQ: u8 = 8;
const KIND_REPAIR_REPLY: u8 = 9;
const KIND_DIGEST_SUMMARY: u8 = 10;

// Register-message kind bytes (first byte of each batch entry header).
const REG_WRITE: u8 = 0;
const REG_NEW_HELP_VAL: u8 = 1;
const REG_READ: u8 = 2;
const REG_SS_ACK: u8 = 3;
const REG_ACK_WRITE: u8 = 4;
const REG_ACK_READ: u8 = 5;

/// The [`StoreWire`] codec for one deployment.
///
/// Carries the deployment's write-sequence-number ring modulus so
/// decoded sequence numbers can be validated against the ring **before**
/// a [`RingSeq`] is constructed (whose constructor asserts) — a peer
/// sending an out-of-ring wsn gets a [`DecodeError`], not a panic.
#[derive(Clone, Copy, Debug)]
pub struct WireCodec {
    wsn_modulus: u128,
}

impl WireCodec {
    /// A codec for a deployment using the given wsn ring modulus (the
    /// builder's `wsn_modulus`, [`sbs_stamps::PAPER_MODULUS`] by
    /// default).
    ///
    /// # Panics
    ///
    /// Panics if the modulus itself is not a valid ring modulus (at
    /// least 3, odd) — that is a local configuration error, not wire
    /// input.
    pub fn new(wsn_modulus: u128) -> Self {
        // Validate once here so decode can construct RingSeq values
        // without ever tripping its assertions on the modulus.
        let _ = RingSeq::zero(wsn_modulus);
        WireCodec { wsn_modulus }
    }

    /// Encodes `msg` as one complete frame (length prefix included).
    ///
    /// # Panics
    ///
    /// Panics if the message exceeds [`MAX_FRAME`] — a locally produced
    /// message that large is a deployment configuration error (the cap
    /// exists to bound what *peers* can make us allocate).
    pub fn encode<V: Payload + BulkCodec>(&self, msg: &StoreWire<V>) -> Vec<u8> {
        let mut frame = vec![0u8; 4];
        frame.push(WIRE_VERSION);
        frame.push(kind_of(msg));
        put_body(&mut frame, msg);
        let payload_len = frame.len() - 4;
        assert!(
            payload_len <= MAX_FRAME,
            "outbound frame of {payload_len} bytes exceeds MAX_FRAME"
        );
        frame[0..4].copy_from_slice(&(payload_len as u32).to_le_bytes());
        debug_assert_eq!(
            payload_len as u64 - 2,
            sbs_sim::Message::wire_bytes(msg),
            "codec body length must equal wire_bytes"
        );
        frame
    }

    /// Decodes one payload (version byte onward — no length prefix).
    pub fn decode_payload<V: Payload + BulkCodec>(
        &self,
        payload: &[u8],
    ) -> Result<StoreWire<V>, DecodeError> {
        let mut buf = payload;
        let version = take_u8(&mut buf)?;
        if version != WIRE_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind = take_u8(&mut buf)?;
        let msg = self.get_body(kind, &mut buf)?;
        if !buf.is_empty() {
            return Err(DecodeError::Trailing);
        }
        Ok(msg)
    }

    /// Decodes one complete frame from the front of `buf`, returning the
    /// message and the total bytes consumed (prefix included). For
    /// streaming sockets use [`read_frame`] + [`WireCodec::decode_payload`]
    /// instead.
    pub fn decode_frame<V: Payload + BulkCodec>(
        &self,
        buf: &[u8],
    ) -> Result<(StoreWire<V>, usize), DecodeError> {
        let Some((prefix, rest)) = buf.split_first_chunk::<4>() else {
            return Err(DecodeError::Truncated);
        };
        let len = u32::from_le_bytes(*prefix) as usize;
        if len > MAX_FRAME {
            return Err(DecodeError::Oversized { len: len as u64 });
        }
        if rest.len() < len {
            return Err(DecodeError::Truncated);
        }
        let msg = self.decode_payload(&rest[..len])?;
        Ok((msg, 4 + len))
    }

    fn get_body<V: Payload + BulkCodec>(
        &self,
        kind: u8,
        buf: &mut &[u8],
    ) -> Result<StoreWire<V>, DecodeError> {
        match kind {
            KIND_BATCH => {
                let mut batch = Vec::new();
                while !buf.is_empty() {
                    batch.push(self.get_reg(buf)?);
                }
                Ok(StoreMsg::Batch(batch))
            }
            KIND_BULK_PUT => {
                let shard = take_u32(buf)?;
                let digest = get_digest(buf)?;
                let len = take_u64(buf)?;
                if buf.len() as u64 != len {
                    return Err(DecodeError::Malformed("bulk byte length"));
                }
                let bytes: SharedBytes = Arc::from(*buf);
                *buf = &[];
                Ok(StoreMsg::BulkPut {
                    shard,
                    digest,
                    bytes,
                })
            }
            KIND_BULK_PUT_ACK => {
                let shard = take_u32(buf)?;
                let digest = get_digest(buf)?;
                Ok(StoreMsg::BulkPutAck { shard, digest })
            }
            KIND_BULK_GET => {
                let shard = take_u32(buf)?;
                let digest = get_digest(buf)?;
                let tag = take_u64(buf)?;
                Ok(StoreMsg::BulkGet { shard, digest, tag })
            }
            KIND_BULK_GET_ACK => {
                let shard = take_u32(buf)?;
                let digest = get_digest(buf)?;
                let tag = take_u64(buf)?;
                let bytes = match take_u8(buf)? {
                    0 => None,
                    1 => {
                        let bytes: SharedBytes = Arc::from(*buf);
                        *buf = &[];
                        Some(bytes)
                    }
                    _ => return Err(DecodeError::Malformed("option flag")),
                };
                Ok(StoreMsg::BulkGetAck {
                    shard,
                    digest,
                    tag,
                    bytes,
                })
            }
            KIND_FRAG_PUT => {
                let shard = take_u32(buf)?;
                let root = get_digest(buf)?;
                let index = take_u32(buf)?;
                let total = take_u32(buf)?;
                let len = take_u64(buf)?;
                if (buf.len() as u64) < len {
                    return Err(DecodeError::Truncated);
                }
                let (frag, proof_bytes) = buf.split_at(len as usize);
                let bytes: SharedBytes = Arc::from(frag);
                if !(proof_bytes.len() as u64).is_multiple_of(BulkDigest::WIRE_SIZE) {
                    return Err(DecodeError::Malformed("merkle proof length"));
                }
                *buf = proof_bytes;
                let mut proof = Vec::new();
                while !buf.is_empty() {
                    proof.push(get_digest(buf)?);
                }
                Ok(StoreMsg::FragPut {
                    shard,
                    root,
                    index,
                    total,
                    bytes,
                    proof,
                })
            }
            KIND_FRAG_PUT_ACK => {
                let shard = take_u32(buf)?;
                let root = get_digest(buf)?;
                let index = take_u32(buf)?;
                Ok(StoreMsg::FragPutAck { shard, root, index })
            }
            KIND_FRAG_GET_ACK => {
                let shard = take_u32(buf)?;
                let root = get_digest(buf)?;
                let tag = take_u64(buf)?;
                let frag = match take_u8(buf)? {
                    0 => None,
                    // flag = 1 + proof length: the fragment bytes run to
                    // the frame end minus the proof's fixed-size tail, so
                    // neither needs its own length field.
                    flag => {
                        let proof_len = (flag - 1) as usize;
                        let index = take_u32(buf)?;
                        let proof_bytes = proof_len as u64 * BulkDigest::WIRE_SIZE;
                        let Some(frag_len) = (buf.len() as u64).checked_sub(proof_bytes) else {
                            return Err(DecodeError::Truncated);
                        };
                        let (frag, tail) = buf.split_at(frag_len as usize);
                        let bytes: SharedBytes = Arc::from(frag);
                        *buf = tail;
                        let mut proof = Vec::new();
                        for _ in 0..proof_len {
                            proof.push(get_digest(buf)?);
                        }
                        Some((index, bytes, proof))
                    }
                };
                Ok(StoreMsg::FragGetAck {
                    shard,
                    root,
                    tag,
                    frag,
                })
            }
            KIND_REPAIR_REQ => {
                let shard = take_u32(buf)?;
                let digest = get_digest(buf)?;
                Ok(StoreMsg::RepairRequest { shard, digest })
            }
            KIND_REPAIR_REPLY => {
                let shard = take_u32(buf)?;
                let digest = get_digest(buf)?;
                let bytes = match take_u8(buf)? {
                    0 => None,
                    1 => {
                        let len = take_u64(buf)?;
                        if (buf.len() as u64) < len {
                            return Err(DecodeError::Truncated);
                        }
                        let (blob, rest) = buf.split_at(len as usize);
                        let blob: SharedBytes = Arc::from(blob);
                        *buf = rest;
                        Some(blob)
                    }
                    _ => return Err(DecodeError::Malformed("option flag")),
                };
                let frag = match take_u8(buf)? {
                    0 => None,
                    1 => {
                        let index = take_u32(buf)?;
                        let frag_len = take_u32(buf)? as usize;
                        let proof_len = take_u32(buf)? as usize;
                        if buf.len() < frag_len {
                            return Err(DecodeError::Truncated);
                        }
                        let (frag, rest) = buf.split_at(frag_len);
                        let frag: SharedBytes = Arc::from(frag);
                        *buf = rest;
                        let mut proof = Vec::new();
                        for _ in 0..proof_len {
                            proof.push(get_digest(buf)?);
                        }
                        Some((index, frag, proof))
                    }
                    _ => return Err(DecodeError::Malformed("option flag")),
                };
                Ok(StoreMsg::RepairReply {
                    shard,
                    digest,
                    bytes,
                    frag,
                })
            }
            KIND_DIGEST_SUMMARY => {
                let count = take_u32(buf)?;
                let mut entries = Vec::new();
                for _ in 0..count {
                    let shard = take_u32(buf)?;
                    let digest = get_digest(buf)?;
                    entries.push((shard, digest));
                }
                Ok(StoreMsg::DigestSummary { entries })
            }
            other => Err(DecodeError::BadKind(other)),
        }
    }

    fn get_reg<V: Payload + BulkCodec>(
        &self,
        buf: &mut &[u8],
    ) -> Result<RegMsg<StorePayload<V>>, DecodeError> {
        let kind = take_u8(buf)?;
        let reg = take_u32(buf)?;
        let tag = take_u64(buf)?;
        let aux = take_u24(buf)?;
        // Reserved header fields must be zero — one canonical encoding
        // per message, so content addressing and byte accounting cannot
        // be gamed by redundant representations.
        let reserved_zero = |v: u64, what| {
            if v == 0 {
                Ok(())
            } else {
                Err(DecodeError::Malformed(what))
            }
        };
        match kind {
            REG_WRITE => {
                reserved_zero(aux as u64, "write aux")?;
                let val = self.get_payload(buf)?;
                Ok(RegMsg::Write {
                    reg: RegId(reg),
                    tag,
                    val,
                })
            }
            REG_NEW_HELP_VAL => {
                let val = self.get_payload(buf)?;
                let mut readers = Vec::new();
                for _ in 0..aux {
                    readers.push(sbs_sim::ProcessId(take_u32(buf)?));
                }
                Ok(RegMsg::NewHelpVal {
                    reg: RegId(reg),
                    tag,
                    val,
                    readers,
                })
            }
            REG_READ => {
                reserved_zero(aux as u64, "read aux")?;
                let new_read = match take_u8(buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::Malformed("bool flag")),
                };
                Ok(RegMsg::Read {
                    reg: RegId(reg),
                    tag,
                    new_read,
                })
            }
            REG_SS_ACK => {
                reserved_zero(reg as u64, "ss-ack reg")?;
                reserved_zero(aux as u64, "ss-ack aux")?;
                Ok(RegMsg::SsAck { tag })
            }
            REG_ACK_WRITE => {
                reserved_zero(tag, "ack-write tag")?;
                let mut helping = Vec::new();
                for _ in 0..aux {
                    let pid = sbs_sim::ProcessId(take_u32(buf)?);
                    let val = match take_u8(buf)? {
                        0 => None,
                        1 => Some(self.get_payload(buf)?),
                        _ => return Err(DecodeError::Malformed("option flag")),
                    };
                    helping.push((pid, val));
                }
                Ok(RegMsg::AckWrite {
                    reg: RegId(reg),
                    helping,
                })
            }
            REG_ACK_READ => {
                reserved_zero(tag, "ack-read tag")?;
                reserved_zero(aux as u64, "ack-read aux")?;
                let last = self.get_payload(buf)?;
                let helping = match take_u8(buf)? {
                    0 => None,
                    1 => Some(self.get_payload(buf)?),
                    _ => return Err(DecodeError::Malformed("option flag")),
                };
                Ok(RegMsg::AckRead {
                    reg: RegId(reg),
                    last,
                    helping,
                })
            }
            other => Err(DecodeError::BadKind(other)),
        }
    }

    fn get_payload<V: Payload + BulkCodec>(
        &self,
        buf: &mut &[u8],
    ) -> Result<StorePayload<V>, DecodeError> {
        let wsn = take_u128(buf)?;
        if wsn >= self.wsn_modulus {
            return Err(DecodeError::Malformed("wsn outside the ring"));
        }
        let val = match take_u8(buf)? {
            0 => {
                let map =
                    ShardMap::<V>::decode_from(buf).ok_or(DecodeError::Malformed("shard map"))?;
                StoreVal::Inline(Arc::new(map))
            }
            1 => {
                let digest = get_digest(buf)?;
                let len = take_u64(buf)?;
                StoreVal::Ref(BulkRef { digest, len })
            }
            2 => {
                let epoch = take_u64(buf)?;
                let count = take_u32(buf)? as usize;
                // The count is validated against the bytes actually
                // present before any allocation (4 bytes per owner).
                if buf.len() < count * 4 {
                    return Err(DecodeError::Malformed("routing owner count"));
                }
                let mut owners = Vec::with_capacity(count);
                for _ in 0..count {
                    owners.push(take_u32(buf)?);
                }
                StoreVal::Routing(RoutingEpoch { epoch, owners })
            }
            _ => return Err(DecodeError::Malformed("store-val variant")),
        };
        Ok(SeqVal::new(RingSeq::new(wsn, self.wsn_modulus), val))
    }
}

fn kind_of<P>(msg: &StoreMsg<P>) -> u8 {
    match msg {
        StoreMsg::Batch(_) => KIND_BATCH,
        StoreMsg::BulkPut { .. } => KIND_BULK_PUT,
        StoreMsg::BulkPutAck { .. } => KIND_BULK_PUT_ACK,
        StoreMsg::BulkGet { .. } => KIND_BULK_GET,
        StoreMsg::BulkGetAck { .. } => KIND_BULK_GET_ACK,
        StoreMsg::FragPut { .. } => KIND_FRAG_PUT,
        StoreMsg::FragPutAck { .. } => KIND_FRAG_PUT_ACK,
        StoreMsg::FragGetAck { .. } => KIND_FRAG_GET_ACK,
        StoreMsg::RepairRequest { .. } => KIND_REPAIR_REQ,
        StoreMsg::RepairReply { .. } => KIND_REPAIR_REPLY,
        StoreMsg::DigestSummary { .. } => KIND_DIGEST_SUMMARY,
    }
}

fn put_body<V: Payload + BulkCodec>(out: &mut Vec<u8>, msg: &StoreWire<V>) {
    match msg {
        StoreMsg::Batch(batch) => {
            for m in batch {
                put_reg(out, m);
            }
        }
        StoreMsg::BulkPut {
            shard,
            digest,
            bytes,
        } => {
            put_u32(out, *shard);
            put_digest(out, digest);
            put_u64(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        StoreMsg::BulkPutAck { shard, digest } => {
            put_u32(out, *shard);
            put_digest(out, digest);
        }
        StoreMsg::BulkGet { shard, digest, tag } => {
            put_u32(out, *shard);
            put_digest(out, digest);
            put_u64(out, *tag);
        }
        StoreMsg::BulkGetAck {
            shard,
            digest,
            tag,
            bytes,
        } => {
            put_u32(out, *shard);
            put_digest(out, digest);
            put_u64(out, *tag);
            match bytes {
                None => out.push(0),
                Some(b) => {
                    out.push(1);
                    out.extend_from_slice(b);
                }
            }
        }
        StoreMsg::FragPut {
            shard,
            root,
            index,
            total,
            bytes,
            proof,
        } => {
            put_u32(out, *shard);
            put_digest(out, root);
            put_u32(out, *index);
            put_u32(out, *total);
            put_u64(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
            for d in proof {
                put_digest(out, d);
            }
        }
        StoreMsg::FragPutAck { shard, root, index } => {
            put_u32(out, *shard);
            put_digest(out, root);
            put_u32(out, *index);
        }
        StoreMsg::FragGetAck {
            shard,
            root,
            tag,
            frag,
        } => {
            put_u32(out, *shard);
            put_digest(out, root);
            put_u64(out, *tag);
            match frag {
                None => out.push(0),
                Some((index, bytes, proof)) => {
                    // Merkle paths are ≤ ⌈log2(replicas)⌉ long (≤ 8 for
                    // any real fleet), so the path length rides in the
                    // option flag and the fragment runs to the frame end.
                    assert!(proof.len() <= 254, "merkle proof too long for the wire");
                    out.push(1 + proof.len() as u8);
                    put_u32(out, *index);
                    out.extend_from_slice(bytes);
                    for d in proof {
                        put_digest(out, d);
                    }
                }
            }
        }
        StoreMsg::RepairRequest { shard, digest } => {
            put_u32(out, *shard);
            put_digest(out, digest);
        }
        StoreMsg::RepairReply {
            shard,
            digest,
            bytes,
            frag,
        } => {
            put_u32(out, *shard);
            put_digest(out, digest);
            // Both planes can ride the same frame shape, so each option
            // carries explicit lengths instead of running to frame end.
            match bytes {
                None => out.push(0),
                Some(b) => {
                    out.push(1);
                    put_u64(out, b.len() as u64);
                    out.extend_from_slice(b);
                }
            }
            match frag {
                None => out.push(0),
                Some((index, b, proof)) => {
                    out.push(1);
                    put_u32(out, *index);
                    put_u32(out, b.len() as u32);
                    put_u32(out, proof.len() as u32);
                    out.extend_from_slice(b);
                    for d in proof {
                        put_digest(out, d);
                    }
                }
            }
        }
        StoreMsg::DigestSummary { entries } => {
            put_u32(out, entries.len() as u32);
            for (shard, digest) in entries {
                put_u32(out, *shard);
                put_digest(out, digest);
            }
        }
    }
}

fn put_reg<V: Payload + BulkCodec>(out: &mut Vec<u8>, msg: &RegMsg<StorePayload<V>>) {
    let (kind, reg, tag, aux) = match msg {
        RegMsg::Write { reg, tag, .. } => (REG_WRITE, reg.0, *tag, 0),
        RegMsg::NewHelpVal {
            reg, tag, readers, ..
        } => (REG_NEW_HELP_VAL, reg.0, *tag, readers.len()),
        RegMsg::Read { reg, tag, .. } => (REG_READ, reg.0, *tag, 0),
        RegMsg::SsAck { tag } => (REG_SS_ACK, 0, *tag, 0),
        RegMsg::AckWrite { reg, helping } => (REG_ACK_WRITE, reg.0, 0, helping.len()),
        RegMsg::AckRead { reg, .. } => (REG_ACK_READ, reg.0, 0, 0),
    };
    out.push(kind);
    put_u32(out, reg);
    put_u64(out, tag);
    put_u24(out, aux);
    match msg {
        RegMsg::Write { val, .. } => put_payload(out, val),
        RegMsg::NewHelpVal { val, readers, .. } => {
            put_payload(out, val);
            for r in readers {
                put_u32(out, r.0);
            }
        }
        RegMsg::Read { new_read, .. } => out.push(*new_read as u8),
        RegMsg::SsAck { .. } => {}
        RegMsg::AckWrite { helping, .. } => {
            for (pid, val) in helping {
                put_u32(out, pid.0);
                match val {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        put_payload(out, v);
                    }
                }
            }
        }
        RegMsg::AckRead { last, helping, .. } => {
            put_payload(out, last);
            match helping {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    put_payload(out, v);
                }
            }
        }
    }
}

fn put_payload<V: Payload + BulkCodec>(out: &mut Vec<u8>, p: &StorePayload<V>) {
    put_u128(out, p.wsn.value());
    match &p.val {
        StoreVal::Inline(map) => {
            out.push(0);
            map.encode_into(out);
        }
        StoreVal::Ref(r) => {
            out.push(1);
            put_digest(out, &r.digest);
            put_u64(out, r.len);
        }
        StoreVal::Routing(e) => {
            // tag(1) + epoch(8) + count(4) + 4 bytes per owner — exactly
            // `RoutingEpoch::encoded_len`, so `wire_bytes` accounting
            // holds for epoch-commit frames too.
            out.push(2);
            put_u64(out, e.epoch);
            put_u32(out, e.owners.len() as u32);
            for &w in &e.owners {
                put_u32(out, w);
            }
        }
    }
}

fn put_digest(out: &mut Vec<u8>, d: &BulkDigest) {
    for word in d.0 {
        put_u64(out, word);
    }
}

fn get_digest(buf: &mut &[u8]) -> Result<BulkDigest, DecodeError> {
    let mut words = [0u64; 4];
    for w in &mut words {
        *w = take_u64(buf)?;
    }
    Ok(BulkDigest(words))
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// The 16-byte register-message header packs its count field (reader or
/// helping-pair count) into 3 bytes — 16 M entries, far beyond any
/// fleet.
fn put_u24(out: &mut Vec<u8>, v: usize) {
    assert!(
        v < (1 << 24),
        "count field overflows the 24-bit header slot"
    );
    out.extend_from_slice(&(v as u32).to_le_bytes()[..3]);
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, DecodeError> {
    let (&b, rest) = buf.split_first().ok_or(DecodeError::Truncated)?;
    *buf = rest;
    Ok(b)
}

fn take_u24(buf: &mut &[u8]) -> Result<u32, DecodeError> {
    let (head, rest) = buf.split_first_chunk::<3>().ok_or(DecodeError::Truncated)?;
    *buf = rest;
    Ok(u32::from_le_bytes([head[0], head[1], head[2], 0]))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, DecodeError> {
    get_u32(buf).ok_or(DecodeError::Truncated)
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, DecodeError> {
    get_u64(buf).ok_or(DecodeError::Truncated)
}

fn take_u128(buf: &mut &[u8]) -> Result<u128, DecodeError> {
    let (head, rest) = buf
        .split_first_chunk::<16>()
        .ok_or(DecodeError::Truncated)?;
    *buf = rest;
    Ok(u128::from_le_bytes(*head))
}

/// Reads one frame's payload from a blocking stream.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer closed). An oversized length prefix fails with
/// [`io::ErrorKind::InvalidData`] **before** any allocation; end-of-stream
/// mid-frame fails with [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    // A clean EOF before the first prefix byte is a normal close; EOF
    // anywhere later is a torn frame.
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid frame prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            DecodeError::Oversized { len: len as u64 },
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Writes one already-encoded frame (from [`WireCodec::encode`]) to a
/// blocking stream.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbs_sim::Message;

    fn codec() -> WireCodec {
        WireCodec::new(sbs_stamps::PAPER_MODULUS)
    }

    fn payload(wsn: u128, entries: &[(&str, u64)]) -> StorePayload<u64> {
        let mut map = ShardMap::new();
        for (k, v) in entries {
            map.insert(k, *v);
        }
        SeqVal::new(
            RingSeq::new(wsn, sbs_stamps::PAPER_MODULUS),
            StoreVal::Inline(Arc::new(map)),
        )
    }

    fn round_trip(msg: &StoreWire<u64>) -> StoreWire<u64> {
        let c = codec();
        let frame = c.encode(msg);
        assert_eq!(
            frame.len() as u64 - 6,
            msg.wire_bytes(),
            "body bytes must equal wire_bytes for {msg:?}"
        );
        let (decoded, consumed) = c.decode_frame::<u64>(&frame).expect("round trip");
        assert_eq!(consumed, frame.len());
        decoded
    }

    #[test]
    fn batch_round_trips_and_matches_wire_bytes() {
        let msg: StoreWire<u64> = StoreMsg::Batch(vec![
            RegMsg::Write {
                reg: RegId(3),
                tag: 77,
                val: payload(5, &[("key1", 10), ("key2", 20)]),
            },
            RegMsg::SsAck { tag: 78 },
        ]);
        let back = round_trip(&msg);
        // StoreMsg lacks PartialEq; re-encoding must reproduce the bytes.
        assert_eq!(codec().encode(&msg), codec().encode(&back));
    }

    #[test]
    fn empty_batch_is_the_empty_body() {
        let msg: StoreWire<u64> = StoreMsg::Batch(Vec::new());
        assert_eq!(msg.wire_bytes(), 0);
        let back = round_trip(&msg);
        assert!(matches!(back, StoreMsg::Batch(b) if b.is_empty()));
    }

    #[test]
    fn out_of_ring_wsn_is_refused() {
        let c = WireCodec::new(257);
        let msg: StoreWire<u64> = StoreMsg::Batch(vec![RegMsg::SsAck { tag: 1 }]);
        let frame = c.encode(&msg);
        // Same frame decoded fine under the matching modulus…
        assert!(c.decode_frame::<u64>(&frame).is_ok());
        // …but a write stamped inside a larger ring is out of range here.
        let big = WireCodec::new(sbs_stamps::PAPER_MODULUS);
        let stamped: StoreWire<u64> = StoreMsg::Batch(vec![RegMsg::Write {
            reg: RegId(0),
            tag: 1,
            val: payload(1_000_000, &[]),
        }]);
        let frame = big.encode(&stamped);
        assert!(matches!(
            c.decode_frame::<u64>(&frame),
            Err(DecodeError::Malformed("wsn outside the ring"))
        ));
    }

    #[test]
    fn routing_epoch_round_trips_and_matches_wire_bytes() {
        let msg: StoreWire<u64> = StoreMsg::Batch(vec![RegMsg::Write {
            reg: RegId(8),
            tag: 41,
            val: SeqVal::new(
                RingSeq::new(6, sbs_stamps::PAPER_MODULUS),
                StoreVal::Routing(RoutingEpoch {
                    epoch: 2,
                    owners: vec![1, 0, 3, 2, 1, 0, 3, 2],
                }),
            ),
        }]);
        let back = round_trip(&msg);
        assert_eq!(codec().encode(&msg), codec().encode(&back));
        let StoreMsg::Batch(batch) = back else {
            panic!("kind preserved")
        };
        let RegMsg::Write { val, .. } = &batch[0] else {
            panic!("write preserved")
        };
        assert!(matches!(
            &val.val,
            StoreVal::Routing(e) if e.epoch == 2 && e.owners == vec![1, 0, 3, 2, 1, 0, 3, 2]
        ));
    }

    #[test]
    fn routing_owner_count_is_validated_before_allocation() {
        let c = codec();
        // A hand-built write whose routing value announces far more
        // owners than the frame carries.
        let mut frame = vec![0u8; 4];
        frame.push(WIRE_VERSION);
        frame.push(KIND_BATCH);
        frame.push(REG_WRITE);
        put_u32(&mut frame, 8); // reg
        put_u64(&mut frame, 1); // tag
        put_u24(&mut frame, 0); // aux
        put_u128(&mut frame, 3); // wsn
        frame.push(2); // StoreVal::Routing
        put_u64(&mut frame, 1); // epoch
        put_u32(&mut frame, u32::MAX); // owner count >> frame length
        put_u32(&mut frame, 0); // a single actual owner
        let len = (frame.len() - 4) as u32;
        frame[0..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            c.decode_frame::<u64>(&frame),
            Err(DecodeError::Malformed("routing owner count"))
        ));
    }

    #[test]
    fn noncanonical_reserved_fields_are_refused() {
        let c = codec();
        // An SsAck with a non-zero reg field: build the body by hand.
        let mut frame = vec![0u8; 4];
        frame.push(WIRE_VERSION);
        frame.push(KIND_BATCH);
        frame.push(REG_SS_ACK);
        put_u32(&mut frame, 9); // reserved reg — must be zero
        put_u64(&mut frame, 1);
        put_u24(&mut frame, 0);
        let len = (frame.len() - 4) as u32;
        frame[0..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            c.decode_frame::<u64>(&frame),
            Err(DecodeError::Malformed("ss-ack reg"))
        ));
    }

    #[test]
    fn read_frame_rejects_oversized_before_allocating() {
        let mut stream: &[u8] = &[(u32::MAX).to_le_bytes(), [0u8; 4]].concat();
        let err = read_frame(&mut stream).expect_err("oversized");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn read_frame_clean_eof_is_none() {
        let mut stream: &[u8] = &[];
        assert!(read_frame(&mut stream).expect("clean eof").is_none());
        let mut torn: &[u8] = &[3, 0];
        assert_eq!(
            read_frame(&mut torn).expect_err("torn").kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
