//! Real-socket transport runtime for the store: the same
//! [`Node`](sbs_sim::Node) state machines the simulator and the thread
//! runtime host, on loopback (or real) TCP — with a canonical,
//! Byzantine-hardened wire codec.
//!
//! The crate has three layers:
//!
//! - [`codec`] — the canonical [`StoreMsg`](sbs_store::StoreMsg) wire
//!   format: length-prefixed frames, a versioned header, body bytes
//!   exactly equal to
//!   [`Message::wire_bytes`](sbs_sim::Message::wire_bytes), hard frame
//!   caps, and a decoder that refuses (never panics on) malformed input.
//! - [`transport`] — [`TcpTransport`]: a
//!   [`Transport`](sbs_sim::Transport) backend over `std::net` TCP with
//!   one stream per directed peer link, blocking writes, and bounded
//!   per-link reconnect. [`NetFabric`] owns the listener and reader
//!   threads that decode inbound frames back into the hosting
//!   [`ThreadRuntime`](sbs_sim::ThreadRuntime).
//! - [`harness`] — [`NetStoreSystem`]: a socket deployment mirroring
//!   `sbs_store::StoreSystem` closely enough to drive the existing YCSB
//!   workload engine over TCP, feed the online
//!   [`ConsistencyMonitor`](sbs_sim::ConsistencyMonitor), and extract
//!   per-key histories for `sbs-check` — which is what makes the
//!   differential sim ≡ socket equivalence tests possible.
//!
//! What is and is not deterministic here: the *issued operation
//! streams* are (they come from `sbs_store::WorkloadStreams`, a pure
//! function of the workload seed), but scheduling, latencies, and the
//! interleaving of completions are real-OS nondeterminism. Correctness
//! on this backend is therefore checked per run — atomicity of the
//! observed histories — rather than by replaying a known-good schedule.

#![warn(missing_docs)]

pub mod codec;
pub mod harness;
pub mod transport;

pub use codec::{read_frame, write_frame, DecodeError, WireCodec, MAX_FRAME, WIRE_VERSION};
pub use harness::{NetReport, NetStoreSystem};
pub use transport::{NetFabric, TcpTransport};
