//! A socket deployment of the store: the same builder, nodes, workload
//! engine, monitor, and history checkers as the simulator harness —
//! over loopback TCP.
//!
//! [`NetStoreSystem::deploy`] takes the very same
//! [`StoreBuilder`] the simulator uses, asks it for a
//! runtime-detached fleet ([`StoreBuilder::build_nodes`]), and hosts
//! the nodes on a [`ThreadRuntime`] whose transports are
//! [`TcpTransport`]s — every protocol message crosses a real socket
//! through the canonical codec. The harness mirrors
//! `sbs_store::StoreSystem` where it matters for verification:
//! `put`/`get` bookkeeping with [`OpId`] intervals, the online
//! [`ConsistencyMonitor`], per-key [`History`] extraction, and the
//! per-key atomicity check — so the differential sim ≡ socket tests can
//! hold both backends to the identical standard.
//!
//! Time here is wall-clock (mapped onto [`SimTime`] nanoseconds since
//! deployment), so latencies and throughput are *real*; scheduling is
//! the OS's, so runs are not replayable. Of the
//! [`FaultPlan`](sbs_store::FaultPlan) drills, `data_wipes` (the
//! self-healing repair trigger) and `reshards` (the dual-commit shard
//! handoff) run here too — virtual-time offsets reinterpreted as
//! wall-clock offsets; the adversarial kinds (scheduled corruption,
//! link garbage) remain simulator-only.

use crate::codec::WireCodec;
use crate::transport::{NetFabric, TcpTransport};
use sbs_bulk::BulkCodec;
use sbs_check::{check_linearizable, History, InitialState, OpKind, OpRecord};
use sbs_core::{Payload, ServerNode};
use sbs_sim::{
    ConsistencyMonitor, LatencyHistogram, LatencySummary, OpId, ProcessId, SimTime, SlowPath,
    ThreadRuntime, Violation,
};
use sbs_store::{
    KeyRouter, LoopMode, PlannedOp, ReshardPlan, RoutingTable, StoreBuilder, StoreClientNode,
    StoreConfig, StoreOut, StorePayload, StoreServerNode, StoreWire, Workload, WorkloadStreams,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock patience for the next completion before a closed-loop run
/// declares the deployment stalled. Loopback round trips are
/// microseconds; thirty seconds is unambiguous deadlock.
const STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// What one completed operation did to its key (wall-clock interval).
#[derive(Clone, Debug)]
struct KeyedRecord<V> {
    key: String,
    record: OpRecord<Option<V>>,
}

/// Operation bookkeeping, mirroring the sim harness's log: invocation
/// intervals plus the touched key, for history extraction.
#[derive(Debug)]
struct NetLog<V> {
    next_op: u64,
    invoked: HashMap<OpId, (ProcessId, SimTime, String, Option<V>)>,
    completed: Vec<KeyedRecord<V>>,
}

impl<V: Payload> NetLog<V> {
    fn new() -> Self {
        NetLog {
            next_op: 0,
            invoked: HashMap::new(),
            completed: Vec::new(),
        }
    }

    fn fresh(&mut self, client: ProcessId, now: SimTime, key: &str, put_val: Option<V>) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        self.invoked
            .insert(op, (client, now, key.to_string(), put_val));
        op
    }

    /// Records the completion; returns `(kind, latency_ns)` for the
    /// latency histograms (`None` on an unknown or duplicate op).
    fn complete(
        &mut self,
        op: OpId,
        at: SimTime,
        read_value: Option<Option<V>>,
    ) -> Option<(&'static str, u64)> {
        let (client, invoked, key, put_val) = self.invoked.remove(&op)?;
        let kind_name = if put_val.is_some() { "put" } else { "get" };
        let latency_ns = at.as_nanos().saturating_sub(invoked.as_nanos());
        let kind = match put_val {
            Some(v) => OpKind::Write(Some(v)),
            None => OpKind::Read(read_value.expect("get completion carries a value")),
        };
        self.completed.push(KeyedRecord {
            key,
            record: OpRecord {
                client,
                op,
                invoked,
                responded: at,
                kind,
            },
        });
        Some((kind_name, latency_ns))
    }
}

/// A store deployment on loopback TCP.
///
/// Field order is load-bearing for shutdown: the [`ThreadRuntime`] is
/// dropped first (stopping the node threads, which closes their
/// outbound streams), then the [`NetFabric`] joins its accept/reader
/// threads.
pub struct NetStoreSystem<V: Payload + BulkCodec + Send + Sync> {
    rt: ThreadRuntime<StoreWire<V>, StoreOut<V>>,
    fabric: NetFabric,
    /// All clients: the `writers` shard owners first, then read-only
    /// clients.
    pub clients: Vec<ProcessId>,
    /// The shared server fleet.
    pub servers: Vec<ProcessId>,
    table: RoutingTable,
    config: StoreConfig,
    epoch: Instant,
    log: NetLog<V>,
    latency: BTreeMap<&'static str, LatencyHistogram>,
    monitor: Option<ConsistencyMonitor<Option<V>>>,
    drops: Arc<AtomicU64>,
    reshard: Option<NetReshard>,
}

/// One live shard handoff on the socket backend — the same orchestrator
/// state machine the sim harness runs, driven by the control events the
/// node threads emit (see `sbs_store::StoreSystem::begin_reshard`).
#[derive(Debug)]
struct NetReshard {
    moves: Vec<(u32, u32, u32)>,
    awaiting_retire: BTreeSet<u32>,
    committed: bool,
    acquires_issued: bool,
    acquired: BTreeSet<u32>,
}

impl<V: Payload + BulkCodec + Send + Sync> std::fmt::Debug for NetStoreSystem<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetStoreSystem")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<V: Payload + BulkCodec + Send + Sync> NetStoreSystem<V> {
    /// Deploys `builder`'s fleet on loopback TCP: binds one listener per
    /// node, spawns the node threads with [`TcpTransport`] backends, and
    /// starts the inbound fabric. The builder's `monitor()` flag carries
    /// over to an online [`ConsistencyMonitor`] fed by `put`/`get`.
    pub fn deploy(builder: &StoreBuilder) -> io::Result<Self> {
        let set = builder.build_nodes::<V>();
        let total = set.nodes.len();
        let codec = WireCodec::new(set.wsn_modulus);
        let mut fabric = NetFabric::bind(total)?;
        let addrs = fabric.addrs().to_vec();
        let drops = Arc::new(AtomicU64::new(0));
        let transport_drops = Arc::clone(&drops);
        let rt = ThreadRuntime::spawn_with_transport(set.nodes, set.seed, move |me, _| {
            Box::new(TcpTransport::<V>::new(
                me,
                addrs.clone(),
                codec,
                Arc::clone(&transport_drops),
            ))
        });
        let injectors = (0..total)
            .map(|i| rt.injector(ProcessId(i as u32)))
            .collect();
        fabric.start(codec, injectors);
        Ok(NetStoreSystem {
            rt,
            fabric,
            clients: set.clients,
            servers: set.servers,
            table: RoutingTable::initial(set.router),
            config: set.config,
            epoch: Instant::now(),
            log: NetLog::new(),
            latency: BTreeMap::new(),
            monitor: set.monitor.then(|| ConsistencyMonitor::with_initial(None)),
            drops,
            reshard: None,
        })
    }

    /// Wall-clock time since deployment, as the harness's [`SimTime`].
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The static key→shard hash base the routing table is built on.
    pub fn router(&self) -> &KeyRouter {
        self.table.base()
    }

    /// The epoch-versioned routing table in force.
    pub fn routing_table(&self) -> &RoutingTable {
        &self.table
    }

    /// The validated configuration snapshot this store was built with.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Invokes `put(key, val)` on the shard's owning writer. Values must
    /// be unique per key across the run (the checkers' requirement).
    pub fn put(&mut self, key: &str, val: V) -> OpId {
        let w = self.table.writer_of(key);
        let client = self.clients[w];
        let now = self.now();
        let op = self.log.fresh(client, now, key, Some(val.clone()));
        if let Some(m) = &mut self.monitor {
            m.op_invoked(op.0, key, now.as_nanos(), Some(Some(val.clone())));
        }
        let key = key.to_string();
        self.rt
            .invoke::<StoreClientNode<V>>(client, move |n, ctx| n.invoke_put(op, key, val, ctx));
        op
    }

    /// Invokes `get(key)` at client `client_idx` (any client may read
    /// any key).
    pub fn get(&mut self, client_idx: usize, key: &str) -> OpId {
        let client = self.clients[client_idx];
        let now = self.now();
        let op = self.log.fresh(client, now, key, None);
        if let Some(m) = &mut self.monitor {
            m.op_invoked(op.0, key, now.as_nanos(), None);
        }
        let key = key.to_string();
        self.rt
            .invoke::<StoreClientNode<V>>(client, move |n, ctx| n.invoke_get(op, key, ctx));
        op
    }

    /// Records one raw completion. The completion timestamp is the
    /// drain time — marginally later than the node emitted it, which
    /// only *widens* the recorded interval and therefore never turns an
    /// atomic history into a violation.
    fn record(&mut self, pid: ProcessId, out: StoreOut<V>) -> Option<(ProcessId, OpId)> {
        let at = self.now();
        let completed = match out {
            StoreOut::PutDone { op } => {
                if let Some(m) = &mut self.monitor {
                    m.op_completed(op.0, at.as_nanos(), None);
                }
                (op, self.log.complete(op, at, None))
            }
            StoreOut::GetDone { op, value } => {
                if let Some(m) = &mut self.monitor {
                    m.op_completed(op.0, at.as_nanos(), Some(value.clone()));
                }
                (op, self.log.complete(op, at, Some(value)))
            }
            // Dual-commit control events advance the handoff state
            // machine; they are not client operations and never touch
            // the op log, monitor, or latency books.
            StoreOut::ShardRetired { shard } => {
                if let Some(r) = &mut self.reshard {
                    r.awaiting_retire.remove(&shard);
                }
                return None;
            }
            StoreOut::EpochCommitted { .. } => {
                if let Some(r) = &mut self.reshard {
                    r.committed = true;
                }
                return None;
            }
            StoreOut::ShardAcquired { shard } => {
                if let Some(r) = &mut self.reshard {
                    r.acquired.insert(shard);
                }
                return None;
            }
        };
        if let Some((kind, latency_ns)) = completed.1 {
            self.latency.entry(kind).or_default().record(latency_ns);
        }
        Some((pid, completed.0))
    }

    /// Waits up to `timeout` for at least one output, then drains
    /// whatever else is immediately available; returns the operation
    /// completions among them (control events advance the reshard state
    /// machine instead). Empty on timeout — or when the window carried
    /// only control events.
    pub fn await_completions(&mut self, timeout: Duration) -> Vec<(ProcessId, OpId)> {
        let mut raw = Vec::new();
        if let Some(first) = self.rt.recv_output(timeout) {
            raw.push(first);
            raw.extend(self.rt.drain_outputs());
        }
        let done = raw
            .into_iter()
            .filter_map(|(pid, out)| self.record(pid, out))
            .collect();
        self.advance_reshard();
        done
    }

    /// Mirror of the sim harness's handoff progression: acquires are
    /// gated on every retire plus the commit; once every new owner has
    /// adopted its shard the handoff is over.
    fn advance_reshard(&mut self) {
        let Some(r) = &mut self.reshard else { return };
        if !r.acquires_issued && r.committed && r.awaiting_retire.is_empty() {
            r.acquires_issued = true;
            let moves = r.moves.clone();
            for (shard, _, new) in moves {
                let c = self.clients[new as usize];
                self.rt
                    .invoke::<StoreClientNode<V>>(c, move |n, ctx| n.acquire_shard(shard, ctx));
            }
        }
        let Some(r) = &self.reshard else { return };
        if r.acquires_issued && r.moves.iter().all(|&(s, _, _)| r.acquired.contains(&s)) {
            self.reshard = None;
        }
    }

    /// Starts a live reshard on the socket deployment — the same
    /// dual-commit handoff `sbs_store::StoreSystem::begin_reshard`
    /// drives in the simulator, here over real TCP: retire and grant
    /// messages are enqueued to the node threads, the epoch flip is
    /// committed as a register write through the routing register, and
    /// the gated acquire step is released as the control events come
    /// back. Keep draining (`await_completions` or a running workload)
    /// until [`NetStoreSystem::reshard_active`] reports `false`.
    ///
    /// # Panics
    ///
    /// Panics if a reshard is already in flight or the plan is invalid
    /// for the current table.
    pub fn begin_reshard(&mut self, plan: &ReshardPlan) {
        assert!(
            self.reshard.is_none(),
            "a reshard is already in flight — drain it before the next plan"
        );
        let next = self.table.apply(plan).unwrap_or_else(|e| {
            panic!("invalid reshard plan: {e}");
        });
        let moves = self.table.moves_to(&next);
        for &(shard, old, new) in &moves {
            let old_c = self.clients[old as usize];
            let new_c = self.clients[new as usize];
            self.rt
                .invoke::<StoreClientNode<V>>(old_c, move |n, ctx| n.retire_shard(shard, ctx));
            self.rt
                .invoke::<StoreClientNode<V>>(new_c, move |n, _| n.grant_shard(shard));
        }
        let coordinator = self.clients[moves.first().map(|&(_, _, new)| new as usize).unwrap_or(0)];
        let (epoch, owners) = (next.epoch(), next.owners().to_vec());
        self.rt
            .invoke::<StoreClientNode<V>>(coordinator, move |n, ctx| {
                n.commit_epoch(epoch, owners, ctx)
            });
        self.reshard = Some(NetReshard {
            awaiting_retire: moves.iter().map(|&(s, _, _)| s).collect(),
            moves,
            committed: false,
            acquires_issued: false,
            acquired: BTreeSet::new(),
        });
        self.table = next;
    }

    /// True while a shard handoff started by
    /// [`NetStoreSystem::begin_reshard`] is still in flight.
    pub fn reshard_active(&self) -> bool {
        self.reshard.is_some()
    }

    /// Wipes server `i`'s blob **and** fragment stores — the data-loss
    /// fault the self-healing plane repairs, here injected into a node
    /// running on a real socket runtime. Register metadata survives.
    /// Supported for *correct* servers only (a Byzantine slot hosts a
    /// different node type and would fail the downcast).
    pub fn wipe_server_data(&mut self, i: usize) {
        type Correct<V> =
            StoreServerNode<StorePayload<V>, ServerNode<StorePayload<V>, StoreOut<V>>>;
        let pid = self.servers[i];
        self.rt
            .invoke::<Correct<V>>(pid, |n, _| n.wipe_data_stores());
    }

    /// Drives `w` to completion, closed-loop (one in-flight operation
    /// per client, refilled on completion), writing `mk(id)` for the
    /// `id`-th planned write. The plan's `data_wipes` and `reshards`
    /// *are* honoured — their virtual-time offsets are read as
    /// wall-clock offsets from the start of the run — so the wipe-repair
    /// drill and live resharding both run on real sockets; the
    /// adversarial fault kinds remain simulator-only. Returns the
    /// wall-clock measurements.
    ///
    /// # Panics
    ///
    /// Panics if the workload is open-loop or carries a simulator-only
    /// fault (Byzantine servers are a builder knob), or if the
    /// deployment stalls for thirty wall-clock seconds.
    pub fn run_workload(&mut self, w: &Workload, mk: impl Fn(u64) -> V) -> NetReport {
        assert!(
            matches!(w.loop_mode, LoopMode::Closed),
            "the socket harness drives closed-loop workloads only"
        );
        let f = &w.faults;
        assert!(
            f.byzantine.is_empty()
                && f.corruptions.is_empty()
                && f.client_corruptions.is_empty()
                && f.link_garbage.is_empty(),
            "adversarial fault plans are simulator-only (Byzantine servers are a builder knob)"
        );
        let mut wipes: Vec<(Duration, usize)> = f
            .data_wipes
            .iter()
            .map(|&(at, i)| (Duration::from_nanos(at.as_nanos()), i))
            .collect();
        wipes.sort_by_key(|&(at, _)| at);
        let mut reshards: Vec<(Duration, ReshardPlan)> = f
            .reshards
            .iter()
            .map(|(at, p)| (Duration::from_nanos(at.as_nanos()), p.clone()))
            .collect();
        reshards.sort_by_key(|&(at, _)| at);
        let mut streams = WorkloadStreams::new(w, self.table.base(), self.clients.len());
        let mut inflight: HashMap<OpId, usize> = HashMap::new();
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let started = Instant::now();
        let mut issue =
            |sys: &mut Self, streams: &mut WorkloadStreams, c: usize| match streams.next_for(c) {
                None => None,
                Some(PlannedOp::Get { key }) => {
                    reads += 1;
                    Some(sys.get(c, &key))
                }
                Some(PlannedOp::Put { key, id }) => {
                    writes += 1;
                    Some(sys.put(&key, mk(id)))
                }
            };
        for c in 0..self.clients.len() {
            if let Some(op) = issue(self, &mut streams, c) {
                inflight.insert(op, c);
                issued += 1;
            }
        }
        // Control-only drain windows (handoff events, idle waits before
        // a scheduled fault falls due) legitimately complete zero ops,
        // so stall detection is a wall-clock deadline since the last
        // sign of progress — not per-window emptiness.
        let mut last_progress = Instant::now();
        while completed < issued
            || issued < w.ops
            || !wipes.is_empty()
            || !reshards.is_empty()
            || self.reshard_active()
        {
            while wipes
                .first()
                .is_some_and(|&(at, _)| started.elapsed() >= at)
            {
                let (_, i) = wipes.remove(0);
                self.wipe_server_data(i);
                last_progress = Instant::now();
            }
            // One handoff at a time: a due plan waits until its
            // predecessor has fully drained, exactly as in the sim.
            while !self.reshard_active()
                && reshards
                    .first()
                    .is_some_and(|&(at, _)| started.elapsed() >= at)
            {
                let (_, plan) = reshards.remove(0);
                self.begin_reshard(&plan);
                last_progress = Instant::now();
            }
            let done = self.await_completions(Duration::from_millis(100));
            assert!(
                last_progress.elapsed() < STALL_TIMEOUT,
                "socket workload stalled: {completed} of {} ops completed",
                w.ops
            );
            if done.is_empty() {
                continue;
            }
            last_progress = Instant::now();
            completed += done.len() as u64;
            for (pid, op) in done {
                // Refill the stream that issued the op. After a shard
                // migration a put completes at the *new* owner, so the
                // completing pid no longer identifies the stream — the
                // issue-time map does. Positional fallback covers
                // duplicate-op edge cases.
                let c = inflight.remove(&op).unwrap_or_else(|| {
                    self.clients
                        .iter()
                        .position(|&p| p == pid)
                        .expect("completion from a client")
                });
                if let Some(op) = issue(self, &mut streams, c) {
                    inflight.insert(op, c);
                    issued += 1;
                }
            }
        }
        let wall_elapsed = started.elapsed();
        let secs = wall_elapsed.as_secs_f64();
        NetReport {
            issued,
            completed,
            reads,
            writes,
            wall_elapsed,
            ops_per_wall_sec: if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            },
            put_latency: self.latency.get("put").and_then(LatencyHistogram::summary),
            get_latency: self.latency.get("get").and_then(LatencyHistogram::summary),
            slow: self.rt.slow_paths(),
            transport_drops: self.transport_drops(),
            decode_rejects: self.decode_rejects(),
        }
    }

    /// The completed-op latency histogram of `kind` (`"put"` / `"get"`).
    pub fn latency_histogram(&self, kind: &str) -> Option<&LatencyHistogram> {
        self.latency.get(kind)
    }

    /// Slow-path counters folded from every node thread — the same
    /// tallies the simulator reports in its `Metrics`.
    pub fn slow_paths(&self) -> SlowPath {
        self.rt.slow_paths()
    }

    /// Messages dropped by transports after exhausting reconnects.
    pub fn transport_drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Inbound frames that failed to decode (each one killed its
    /// connection).
    pub fn decode_rejects(&self) -> u64 {
        self.fabric.decode_rejects()
    }

    /// The online atomicity monitor, when enabled at build time.
    pub fn monitor(&self) -> Option<&ConsistencyMonitor<Option<V>>> {
        self.monitor.as_ref()
    }

    /// Violations the online monitor has flagged (empty when the monitor
    /// is off or clean).
    pub fn monitor_violations(&self) -> &[Violation] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    /// Keys touched by completed operations.
    pub fn keys_touched(&self) -> BTreeSet<String> {
        self.log.completed.iter().map(|r| r.key.clone()).collect()
    }

    /// The extracted history of one key — same shape as the sim
    /// harness's, so the same checkers (and the differential
    /// `equivalent_write_histories`) apply.
    pub fn history_for_key(&self, key: &str) -> History<Option<V>> {
        History::new(
            self.log
                .completed
                .iter()
                .filter(|r| r.key == key)
                .map(|r| r.record.clone())
                .collect(),
        )
    }

    /// Every touched key's history, keyed — the input shape of
    /// `sbs_check::equivalent_write_histories`.
    pub fn histories(&self) -> BTreeMap<String, History<Option<V>>> {
        self.keys_touched()
            .into_iter()
            .map(|k| {
                let h = self.history_for_key(&k);
                (k, h)
            })
            .collect()
    }

    /// Checks every touched key's history for register linearizability
    /// (initial state: absent), exactly like the sim harness.
    pub fn check_per_key_atomicity(&self) -> Result<usize, String> {
        let mut checked = 0;
        for key in self.keys_touched() {
            let h = self.history_for_key(&key);
            h.validate_unique_writes()
                .map_err(|e| format!("key {key}: {e}"))?;
            let initial = InitialState::OneOf(std::iter::once(None).collect());
            let rep = check_linearizable(&h, &initial).map_err(|e| format!("key {key}: {e}"))?;
            if !rep.linearizable {
                return Err(format!(
                    "key {key}: history not linearizable (failed segment {:?}) — {h:?}",
                    rep.failed_segment
                ));
            }
            checked += 1;
        }
        Ok(checked)
    }
}

/// Wall-clock measurements from one [`NetStoreSystem::run_workload`].
#[derive(Clone, Debug)]
pub struct NetReport {
    /// Operations issued.
    pub issued: u64,
    /// Operations completed.
    pub completed: u64,
    /// Reads issued.
    pub reads: u64,
    /// Writes issued.
    pub writes: u64,
    /// Wall time from first invocation to last completion.
    pub wall_elapsed: Duration,
    /// Completed operations per wall-clock second — the number the sim
    /// benches could never report.
    pub ops_per_wall_sec: f64,
    /// Completed-put latency percentiles (wall nanoseconds).
    pub put_latency: Option<LatencySummary>,
    /// Completed-get latency percentiles (wall nanoseconds).
    pub get_latency: Option<LatencySummary>,
    /// Slow-path counters folded across all node threads.
    pub slow: SlowPath,
    /// Messages the transports gave up on (link loss).
    pub transport_drops: u64,
    /// Inbound frames refused by the codec.
    pub decode_rejects: u64,
}
