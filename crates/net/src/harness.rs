//! A socket deployment of the store: the same builder, nodes, workload
//! engine, monitor, and history checkers as the simulator harness —
//! over loopback TCP.
//!
//! [`NetStoreSystem::deploy`] takes the very same
//! [`StoreBuilder`] the simulator uses, asks it for a
//! runtime-detached fleet ([`StoreBuilder::build_nodes`]), and hosts
//! the nodes on a [`ThreadRuntime`] whose transports are
//! [`TcpTransport`]s — every protocol message crosses a real socket
//! through the canonical codec. The harness mirrors
//! `sbs_store::StoreSystem` where it matters for verification:
//! `put`/`get` bookkeeping with [`OpId`] intervals, the online
//! [`ConsistencyMonitor`], per-key [`History`] extraction, and the
//! per-key atomicity check — so the differential sim ≡ socket tests can
//! hold both backends to the identical standard.
//!
//! Time here is wall-clock (mapped onto [`SimTime`] nanoseconds since
//! deployment), so latencies and throughput are *real*; scheduling is
//! the OS's, so runs are not replayable. Fault drills (scheduled
//! corruption, link garbage) remain simulator-only — the workload's
//! [`FaultPlan`](sbs_store::FaultPlan) must be empty.

use crate::codec::WireCodec;
use crate::transport::{NetFabric, TcpTransport};
use sbs_bulk::BulkCodec;
use sbs_check::{check_linearizable, History, InitialState, OpKind, OpRecord};
use sbs_core::Payload;
use sbs_sim::{
    ConsistencyMonitor, LatencyHistogram, LatencySummary, OpId, ProcessId, SimTime, SlowPath,
    ThreadRuntime, Violation,
};
use sbs_store::{
    KeyRouter, LoopMode, PlannedOp, StoreBuilder, StoreClientNode, StoreConfig, StoreOut,
    StoreWire, Workload, WorkloadStreams,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock patience for the next completion before a closed-loop run
/// declares the deployment stalled. Loopback round trips are
/// microseconds; thirty seconds is unambiguous deadlock.
const STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// What one completed operation did to its key (wall-clock interval).
#[derive(Clone, Debug)]
struct KeyedRecord<V> {
    key: String,
    record: OpRecord<Option<V>>,
}

/// Operation bookkeeping, mirroring the sim harness's log: invocation
/// intervals plus the touched key, for history extraction.
#[derive(Debug)]
struct NetLog<V> {
    next_op: u64,
    invoked: HashMap<OpId, (ProcessId, SimTime, String, Option<V>)>,
    completed: Vec<KeyedRecord<V>>,
}

impl<V: Payload> NetLog<V> {
    fn new() -> Self {
        NetLog {
            next_op: 0,
            invoked: HashMap::new(),
            completed: Vec::new(),
        }
    }

    fn fresh(&mut self, client: ProcessId, now: SimTime, key: &str, put_val: Option<V>) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        self.invoked
            .insert(op, (client, now, key.to_string(), put_val));
        op
    }

    /// Records the completion; returns `(kind, latency_ns)` for the
    /// latency histograms (`None` on an unknown or duplicate op).
    fn complete(
        &mut self,
        op: OpId,
        at: SimTime,
        read_value: Option<Option<V>>,
    ) -> Option<(&'static str, u64)> {
        let (client, invoked, key, put_val) = self.invoked.remove(&op)?;
        let kind_name = if put_val.is_some() { "put" } else { "get" };
        let latency_ns = at.as_nanos().saturating_sub(invoked.as_nanos());
        let kind = match put_val {
            Some(v) => OpKind::Write(Some(v)),
            None => OpKind::Read(read_value.expect("get completion carries a value")),
        };
        self.completed.push(KeyedRecord {
            key,
            record: OpRecord {
                client,
                op,
                invoked,
                responded: at,
                kind,
            },
        });
        Some((kind_name, latency_ns))
    }
}

/// A store deployment on loopback TCP.
///
/// Field order is load-bearing for shutdown: the [`ThreadRuntime`] is
/// dropped first (stopping the node threads, which closes their
/// outbound streams), then the [`NetFabric`] joins its accept/reader
/// threads.
pub struct NetStoreSystem<V: Payload + BulkCodec + Send + Sync> {
    rt: ThreadRuntime<StoreWire<V>, StoreOut<V>>,
    fabric: NetFabric,
    /// All clients: the `writers` shard owners first, then read-only
    /// clients.
    pub clients: Vec<ProcessId>,
    /// The shared server fleet.
    pub servers: Vec<ProcessId>,
    router: KeyRouter,
    config: StoreConfig,
    epoch: Instant,
    log: NetLog<V>,
    latency: BTreeMap<&'static str, LatencyHistogram>,
    monitor: Option<ConsistencyMonitor<Option<V>>>,
    drops: Arc<AtomicU64>,
}

impl<V: Payload + BulkCodec + Send + Sync> std::fmt::Debug for NetStoreSystem<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetStoreSystem")
            .field("clients", &self.clients.len())
            .field("servers", &self.servers.len())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl<V: Payload + BulkCodec + Send + Sync> NetStoreSystem<V> {
    /// Deploys `builder`'s fleet on loopback TCP: binds one listener per
    /// node, spawns the node threads with [`TcpTransport`] backends, and
    /// starts the inbound fabric. The builder's `monitor()` flag carries
    /// over to an online [`ConsistencyMonitor`] fed by `put`/`get`.
    pub fn deploy(builder: &StoreBuilder) -> io::Result<Self> {
        let set = builder.build_nodes::<V>();
        let total = set.nodes.len();
        let codec = WireCodec::new(set.wsn_modulus);
        let mut fabric = NetFabric::bind(total)?;
        let addrs = fabric.addrs().to_vec();
        let drops = Arc::new(AtomicU64::new(0));
        let transport_drops = Arc::clone(&drops);
        let rt = ThreadRuntime::spawn_with_transport(set.nodes, set.seed, move |me, _| {
            Box::new(TcpTransport::<V>::new(
                me,
                addrs.clone(),
                codec,
                Arc::clone(&transport_drops),
            ))
        });
        let injectors = (0..total)
            .map(|i| rt.injector(ProcessId(i as u32)))
            .collect();
        fabric.start(codec, injectors);
        Ok(NetStoreSystem {
            rt,
            fabric,
            clients: set.clients,
            servers: set.servers,
            router: set.router,
            config: set.config,
            epoch: Instant::now(),
            log: NetLog::new(),
            latency: BTreeMap::new(),
            monitor: set.monitor.then(|| ConsistencyMonitor::with_initial(None)),
            drops,
        })
    }

    /// Wall-clock time since deployment, as the harness's [`SimTime`].
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The key router in force.
    pub fn router(&self) -> &KeyRouter {
        &self.router
    }

    /// The validated configuration snapshot this store was built with.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Invokes `put(key, val)` on the shard's owning writer. Values must
    /// be unique per key across the run (the checkers' requirement).
    pub fn put(&mut self, key: &str, val: V) -> OpId {
        let w = self.router.writer_of(key);
        let client = self.clients[w];
        let now = self.now();
        let op = self.log.fresh(client, now, key, Some(val.clone()));
        if let Some(m) = &mut self.monitor {
            m.op_invoked(op.0, key, now.as_nanos(), Some(Some(val.clone())));
        }
        let key = key.to_string();
        self.rt
            .invoke::<StoreClientNode<V>>(client, move |n, ctx| n.invoke_put(op, key, val, ctx));
        op
    }

    /// Invokes `get(key)` at client `client_idx` (any client may read
    /// any key).
    pub fn get(&mut self, client_idx: usize, key: &str) -> OpId {
        let client = self.clients[client_idx];
        let now = self.now();
        let op = self.log.fresh(client, now, key, None);
        if let Some(m) = &mut self.monitor {
            m.op_invoked(op.0, key, now.as_nanos(), None);
        }
        let key = key.to_string();
        self.rt
            .invoke::<StoreClientNode<V>>(client, move |n, ctx| n.invoke_get(op, key, ctx));
        op
    }

    /// Records one raw completion. The completion timestamp is the
    /// drain time — marginally later than the node emitted it, which
    /// only *widens* the recorded interval and therefore never turns an
    /// atomic history into a violation.
    fn record(&mut self, pid: ProcessId, out: StoreOut<V>) -> (ProcessId, OpId) {
        let at = self.now();
        let completed = match out {
            StoreOut::PutDone { op } => {
                if let Some(m) = &mut self.monitor {
                    m.op_completed(op.0, at.as_nanos(), None);
                }
                (op, self.log.complete(op, at, None))
            }
            StoreOut::GetDone { op, value } => {
                if let Some(m) = &mut self.monitor {
                    m.op_completed(op.0, at.as_nanos(), Some(value.clone()));
                }
                (op, self.log.complete(op, at, Some(value)))
            }
        };
        if let Some((kind, latency_ns)) = completed.1 {
            self.latency.entry(kind).or_default().record(latency_ns);
        }
        (pid, completed.0)
    }

    /// Waits up to `timeout` for at least one completion, then drains
    /// whatever else is immediately available. Empty on timeout.
    pub fn await_completions(&mut self, timeout: Duration) -> Vec<(ProcessId, OpId)> {
        let mut raw = Vec::new();
        if let Some(first) = self.rt.recv_output(timeout) {
            raw.push(first);
            raw.extend(self.rt.drain_outputs());
        }
        raw.into_iter()
            .map(|(pid, out)| self.record(pid, out))
            .collect()
    }

    /// Drives `w` to completion, closed-loop (one in-flight operation
    /// per client, refilled on completion), writing `mk(id)` for the
    /// `id`-th planned write. Returns the wall-clock measurements.
    ///
    /// # Panics
    ///
    /// Panics if the workload is open-loop or carries a fault plan
    /// (simulator-only features), or if the deployment stalls for
    /// thirty wall-clock seconds.
    pub fn run_workload(&mut self, w: &Workload, mk: impl Fn(u64) -> V) -> NetReport {
        assert!(
            matches!(w.loop_mode, LoopMode::Closed),
            "the socket harness drives closed-loop workloads only"
        );
        let f = &w.faults;
        assert!(
            f.byzantine.is_empty()
                && f.corruptions.is_empty()
                && f.client_corruptions.is_empty()
                && f.link_garbage.is_empty()
                && f.data_wipes.is_empty(),
            "fault plans are simulator-only (Byzantine servers are a builder knob)"
        );
        let mut streams = WorkloadStreams::new(w, &self.router, self.clients.len());
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let started = Instant::now();
        let mut issue =
            |sys: &mut Self, streams: &mut WorkloadStreams, c: usize| match streams.next_for(c) {
                None => false,
                Some(PlannedOp::Get { key }) => {
                    sys.get(c, &key);
                    reads += 1;
                    true
                }
                Some(PlannedOp::Put { key, id }) => {
                    sys.put(&key, mk(id));
                    writes += 1;
                    true
                }
            };
        for c in 0..self.clients.len() {
            issued += u64::from(issue(self, &mut streams, c));
        }
        while completed < issued || issued < w.ops {
            let done = self.await_completions(STALL_TIMEOUT);
            assert!(
                !done.is_empty(),
                "socket workload stalled: {completed} of {} ops completed",
                w.ops
            );
            completed += done.len() as u64;
            for (pid, _) in done {
                let c = self
                    .clients
                    .iter()
                    .position(|&p| p == pid)
                    .expect("completion from a client");
                issued += u64::from(issue(self, &mut streams, c));
            }
        }
        let wall_elapsed = started.elapsed();
        let secs = wall_elapsed.as_secs_f64();
        NetReport {
            issued,
            completed,
            reads,
            writes,
            wall_elapsed,
            ops_per_wall_sec: if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            },
            put_latency: self.latency.get("put").and_then(LatencyHistogram::summary),
            get_latency: self.latency.get("get").and_then(LatencyHistogram::summary),
            slow: self.rt.slow_paths(),
            transport_drops: self.transport_drops(),
            decode_rejects: self.decode_rejects(),
        }
    }

    /// The completed-op latency histogram of `kind` (`"put"` / `"get"`).
    pub fn latency_histogram(&self, kind: &str) -> Option<&LatencyHistogram> {
        self.latency.get(kind)
    }

    /// Slow-path counters folded from every node thread — the same
    /// tallies the simulator reports in its `Metrics`.
    pub fn slow_paths(&self) -> SlowPath {
        self.rt.slow_paths()
    }

    /// Messages dropped by transports after exhausting reconnects.
    pub fn transport_drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Inbound frames that failed to decode (each one killed its
    /// connection).
    pub fn decode_rejects(&self) -> u64 {
        self.fabric.decode_rejects()
    }

    /// The online atomicity monitor, when enabled at build time.
    pub fn monitor(&self) -> Option<&ConsistencyMonitor<Option<V>>> {
        self.monitor.as_ref()
    }

    /// Violations the online monitor has flagged (empty when the monitor
    /// is off or clean).
    pub fn monitor_violations(&self) -> &[Violation] {
        self.monitor.as_ref().map_or(&[], |m| m.violations())
    }

    /// Keys touched by completed operations.
    pub fn keys_touched(&self) -> BTreeSet<String> {
        self.log.completed.iter().map(|r| r.key.clone()).collect()
    }

    /// The extracted history of one key — same shape as the sim
    /// harness's, so the same checkers (and the differential
    /// `equivalent_write_histories`) apply.
    pub fn history_for_key(&self, key: &str) -> History<Option<V>> {
        History::new(
            self.log
                .completed
                .iter()
                .filter(|r| r.key == key)
                .map(|r| r.record.clone())
                .collect(),
        )
    }

    /// Every touched key's history, keyed — the input shape of
    /// `sbs_check::equivalent_write_histories`.
    pub fn histories(&self) -> BTreeMap<String, History<Option<V>>> {
        self.keys_touched()
            .into_iter()
            .map(|k| {
                let h = self.history_for_key(&k);
                (k, h)
            })
            .collect()
    }

    /// Checks every touched key's history for register linearizability
    /// (initial state: absent), exactly like the sim harness.
    pub fn check_per_key_atomicity(&self) -> Result<usize, String> {
        let mut checked = 0;
        for key in self.keys_touched() {
            let h = self.history_for_key(&key);
            h.validate_unique_writes()
                .map_err(|e| format!("key {key}: {e}"))?;
            let initial = InitialState::OneOf(std::iter::once(None).collect());
            let rep = check_linearizable(&h, &initial).map_err(|e| format!("key {key}: {e}"))?;
            if !rep.linearizable {
                return Err(format!(
                    "key {key}: history not linearizable (failed segment {:?}) — {h:?}",
                    rep.failed_segment
                ));
            }
            checked += 1;
        }
        Ok(checked)
    }
}

/// Wall-clock measurements from one [`NetStoreSystem::run_workload`].
#[derive(Clone, Debug)]
pub struct NetReport {
    /// Operations issued.
    pub issued: u64,
    /// Operations completed.
    pub completed: u64,
    /// Reads issued.
    pub reads: u64,
    /// Writes issued.
    pub writes: u64,
    /// Wall time from first invocation to last completion.
    pub wall_elapsed: Duration,
    /// Completed operations per wall-clock second — the number the sim
    /// benches could never report.
    pub ops_per_wall_sec: f64,
    /// Completed-put latency percentiles (wall nanoseconds).
    pub put_latency: Option<LatencySummary>,
    /// Completed-get latency percentiles (wall nanoseconds).
    pub get_latency: Option<LatencySummary>,
    /// Slow-path counters folded across all node threads.
    pub slow: SlowPath,
    /// Messages the transports gave up on (link loss).
    pub transport_drops: u64,
    /// Inbound frames refused by the codec.
    pub decode_rejects: u64,
}
