//! The E8 contrast, as tests: fault-free correctness of both baselines,
//! the masking register's permanent failure after transient faults, and
//! the quiescent register's recovery *only* under write quiescence.

use sbs_baseline::{BaselineBuilder, BaselineKind, CLEANING_PERIOD};
use sbs_check::check_regularity;
use sbs_sim::SimDuration;

#[test]
fn masking_register_is_regular_without_faults() {
    for seed in 0..5 {
        let mut sys = BaselineBuilder::new(BaselineKind::Masking, 5, 1)
            .seed(seed)
            .build(0u64);
        for v in 1..=8u64 {
            sys.write(v);
            assert!(sys.settle(), "seed {seed}: write must terminate");
            sys.read();
            assert!(sys.settle(), "seed {seed}: read must terminate");
        }
        let rep = check_regularity(&sys.history(), &[0]);
        assert!(rep.is_regular(), "seed {seed}: {:?}", rep.violations);
    }
}

#[test]
fn quiescent_register_is_regular_without_faults() {
    for seed in 0..5 {
        let mut sys = BaselineBuilder::new(BaselineKind::Quiescent, 6, 1)
            .seed(seed)
            .build(0u64);
        for v in 1..=8u64 {
            sys.write(v);
            sys.run_for(SimDuration::millis(30));
            sys.read();
            sys.run_for(SimDuration::millis(30));
        }
        assert_eq!(sys.pending_ops(), 0, "seed {seed}: all ops complete");
        let rep = check_regularity(&sys.history(), &[0]);
        assert!(rep.is_regular(), "seed {seed}: {:?}", rep.violations);
    }
}

/// The masking register never recovers from server-state corruption: the
/// servers' timestamps land astronomically high (random u64), so the
/// *correct* writer's fresh timestamps are ignored by the adoption rule,
/// forever. (Corrupting the writer too actually *helps* this register —
/// a random u64 usually beats the servers — so the pure server fault is
/// the sharp case; experiment E8 sweeps both.)
#[test]
fn masking_register_stays_broken_after_corruption() {
    let mut broken = 0;
    let trials = 10;
    for seed in 0..trials {
        let mut sys = BaselineBuilder::new(BaselineKind::Masking, 5, 1)
            .seed(seed)
            .build(0u64);
        sys.write(1);
        sys.settle();
        sys.corrupt_all_servers();
        sys.run_for(SimDuration::millis(5));
        // Many fresh writes — the stabilizing register would recover at
        // the first one.
        for v in 100..120u64 {
            sys.write(v);
            sys.run_for(SimDuration::millis(20));
        }
        sys.read();
        sys.run_for(SimDuration::secs(2));
        let h = sys.history();
        let last_read = h.reads().last().map(|r| *r.kind.value());
        // Recovery = the read completed with the latest written value.
        let recovered = last_read == Some(119);
        if !recovered {
            broken += 1;
        }
    }
    assert_eq!(
        broken, trials,
        "the masking register must stay broken after pure server corruption"
    );
}

/// The quiescent register recovers — but only when the writer pauses long
/// enough for a cleaning round to run.
#[test]
fn quiescent_register_recovers_only_with_quiescence() {
    // (a) With a quiescent window: recovery.
    let mut recovered_with_pause = 0;
    // (b) Under continuous writes (every write marks rounds dirty): stuck.
    let mut recovered_without_pause = 0;
    let trials = 10;

    for seed in 0..trials {
        // --- (a) quiescent window ---
        let mut sys = BaselineBuilder::new(BaselineKind::Quiescent, 6, 1)
            .seed(seed)
            .build(0u64);
        sys.write(1);
        sys.run_for(SimDuration::millis(30));
        sys.corrupt_all_servers();
        // Write-quiescent window: several cleaning periods.
        sys.run_for(CLEANING_PERIOD * 6);
        sys.write(100);
        sys.run_for(SimDuration::millis(60));
        sys.read();
        sys.run_for(SimDuration::secs(2));
        let h = sys.history();
        if h.reads().last().map(|r| *r.kind.value()) == Some(100) {
            recovered_with_pause += 1;
        }

        // --- (b) continuous writes ---
        let mut sys = BaselineBuilder::new(BaselineKind::Quiescent, 6, 1)
            .seed(seed)
            .build(0u64);
        sys.write(1);
        sys.run_for(SimDuration::millis(30));
        sys.corrupt_all_servers();
        // Writes arrive faster than the cleaning period: every round is
        // dirty, repair never runs.
        let mut v = 100u64;
        for _ in 0..40 {
            sys.write(v);
            v += 1;
            sys.run_for(CLEANING_PERIOD / 2);
        }
        sys.read();
        sys.run_for(SimDuration::secs(2));
        let h = sys.history();
        let last = h.reads().last().map(|r| *r.kind.value());
        if last == Some(v - 1) {
            recovered_without_pause += 1;
        }
    }
    assert!(
        recovered_with_pause >= trials * 7 / 10,
        "quiescence should usually heal the register: {recovered_with_pause}/{trials}"
    );
    assert!(
        recovered_without_pause <= trials / 2,
        "continuous writes should usually prevent healing: {recovered_without_pause}/{trials}"
    );
}
