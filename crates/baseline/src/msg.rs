//! Wire protocol shared by the baseline registers.
//!
//! Unlike the paper's constructions, the baselines use **unbounded**
//! timestamps and round identifiers on the wire — which is precisely why
//! they are not self-stabilizing: a transient fault can push a counter
//! arbitrarily far and nothing bounded ever catches up with it.

use sbs_core::Payload;
use sbs_sim::Message;

/// Baseline protocol messages.
#[derive(Clone, Debug)]
pub enum BMsg<V> {
    /// Writer → servers: store `(ts, val)` if `ts` is newer.
    Write {
        /// Unbounded write timestamp.
        ts: u64,
        /// The value.
        val: V,
    },
    /// Server → writer: acknowledges a write; carries the server's current
    /// timestamp (informational).
    AckWrite {
        /// The timestamp being acknowledged.
        ts: u64,
    },
    /// Reader → servers: a query round.
    Read {
        /// Unbounded round identifier (matches replies to queries).
        rid: u64,
    },
    /// Server → reader: the server's current pair.
    AckRead {
        /// Echo of the query round.
        rid: u64,
        /// The server's current timestamp.
        ts: u64,
        /// The server's current value.
        val: V,
    },
    /// Server ↔ server (quiescent baseline only): state exchange for the
    /// cleaning round.
    Gossip {
        /// The sender's current timestamp.
        ts: u64,
        /// The sender's current value.
        val: V,
    },
}

impl<V: Payload> Message for BMsg<V> {
    fn label(&self) -> &'static str {
        match self {
            BMsg::Write { .. } => "B_WRITE",
            BMsg::AckWrite { .. } => "B_ACK_WRITE",
            BMsg::Read { .. } => "B_READ",
            BMsg::AckRead { .. } => "B_ACK_READ",
            BMsg::Gossip { .. } => "B_GOSSIP",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(BMsg::Write { ts: 1, val: 2u64 }.label(), "B_WRITE");
        assert_eq!(BMsg::<u64>::AckWrite { ts: 1 }.label(), "B_ACK_WRITE");
        assert_eq!(BMsg::<u64>::Read { rid: 1 }.label(), "B_READ");
        assert_eq!(
            BMsg::AckRead {
                rid: 1,
                ts: 2,
                val: 3u64
            }
            .label(),
            "B_ACK_READ"
        );
        assert_eq!(BMsg::Gossip { ts: 1, val: 2u64 }.label(), "B_GOSSIP");
    }
}
