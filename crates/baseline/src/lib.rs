//! # sbs-baseline — the registers the paper is compared against
//!
//! Two baseline Byzantine-tolerant SWSR register constructions, used by
//! experiment E8 to reproduce the related-work contrast drawn in the
//! paper's introduction and conclusion:
//!
//! - [`MaskingWriter`]/[`MaskingReader`]/[`MaskingServer`] — a classical
//!   masking-quorum regular register (`n ≥ 4t + 1`, à la Malkhi–Reiter).
//!   Tolerates Byzantine servers, but is **not self-stabilizing**: one
//!   transient fault that inflates server timestamps silences the writer
//!   forever.
//! - [`QuiescentServer`] (with the same clients, read quorum `2t + 1`,
//!   `n ≥ 5t + 1`) — a stabilizing register in the spirit of the paper's
//!   reference \[3\], whose repair runs only during **write-quiescent**
//!   periods. It recovers from transient faults iff the writer pauses;
//!   the paper's construction needs no such pause.
//!
//! Deploy either with [`BaselineBuilder`]; the resulting
//! [`BaselineSwsr`] mirrors the `sbs_core::harness` API.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod harness;
mod masking;
mod msg;
mod quiescent;

pub use harness::{BaselineBuilder, BaselineKind, BaselineSwsr};
pub use masking::{MaskingReader, MaskingServer, MaskingWriter};
pub use msg::BMsg;
pub use quiescent::{QuiescentServer, CLEANING_PERIOD};
