//! Scenario harness for the baseline registers, mirroring the API of
//! `sbs_core::harness` so experiment E8 can drive all three register
//! families identically.

use crate::masking::{MaskingReader, MaskingServer, MaskingWriter};
use crate::msg::BMsg;
use crate::quiescent::QuiescentServer;
use sbs_check::History;
use sbs_core::harness::OpLog;
use sbs_core::{ClientOut, Payload};
use sbs_sim::{DelayModel, OpId, ProcessId, SimConfig, SimDuration, Simulation};

const SETTLE_HORIZON: SimDuration = SimDuration::secs(600);

/// Which baseline register family to deploy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// Masking quorums, `n ≥ 4t + 1`, non-stabilizing.
    Masking,
    /// Quiescence-dependent cleaning, `n ≥ 5t + 1`.
    Quiescent,
}

/// Builder for baseline deployments.
#[derive(Clone, Debug)]
pub struct BaselineBuilder {
    kind: BaselineKind,
    n: usize,
    t: usize,
    seed: u64,
    delay: DelayModel,
}

impl BaselineBuilder {
    /// Starts a builder.
    ///
    /// # Panics
    ///
    /// Panics if `n` is below the family's resilience bound.
    #[allow(clippy::int_plus_one)] // keep the `n >= 4t+1` / `n >= 5t+1` forms
    pub fn new(kind: BaselineKind, n: usize, t: usize) -> Self {
        match kind {
            BaselineKind::Masking => {
                assert!(n >= 4 * t + 1, "masking quorums require n >= 4t+1")
            }
            BaselineKind::Quiescent => {
                assert!(n >= 5 * t + 1, "the quiescent baseline requires n >= 5t+1")
            }
        }
        BaselineBuilder {
            kind,
            n,
            t,
            seed: 1,
            delay: DelayModel::Uniform {
                lo: SimDuration::micros(50),
                hi: SimDuration::millis(2),
            },
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the link delay model.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Builds the deployment.
    pub fn build<V: Payload>(&self, initial: V) -> BaselineSwsr<V> {
        let mut sim: Simulation<BMsg<V>, ClientOut<V>> =
            Simulation::new(SimConfig::with_seed(self.seed));
        let writer = sim.reserve_id();
        let reader = sim.reserve_id();
        let servers: Vec<ProcessId> = (0..self.n).map(|_| sim.reserve_id()).collect();
        for &s in &servers {
            sim.add_duplex(writer, s, self.delay.clone());
            sim.add_duplex(reader, s, self.delay.clone());
        }
        if self.kind == BaselineKind::Quiescent {
            // Cleaning gossip runs server-to-server.
            for &a in &servers {
                for &b in &servers {
                    if a != b {
                        sim.add_link(a, b, self.delay.clone());
                    }
                }
            }
        }
        for &s in &servers {
            match self.kind {
                BaselineKind::Masking => {
                    sim.add_node_at(s, MaskingServer::new(initial.clone()));
                }
                BaselineKind::Quiescent => {
                    let peers: Vec<ProcessId> =
                        servers.iter().copied().filter(|&p| p != s).collect();
                    sim.add_node_at(s, QuiescentServer::new(initial.clone(), peers, self.t));
                }
            }
        }
        let accept_quorum = match self.kind {
            BaselineKind::Masking => self.t + 1,
            BaselineKind::Quiescent => 2 * self.t + 1,
        };
        sim.add_node_at(writer, MaskingWriter::<V>::new(servers.clone(), self.t));
        sim.add_node_at(
            reader,
            MaskingReader::<V>::new(servers.clone(), self.t, accept_quorum),
        );
        BaselineSwsr {
            kind: self.kind,
            sim,
            writer,
            reader,
            servers,
            log: OpLog::new(),
        }
    }
}

/// A running baseline deployment.
#[derive(Debug)]
pub struct BaselineSwsr<V: Payload> {
    /// Which family this is.
    pub kind: BaselineKind,
    /// The underlying simulation.
    pub sim: Simulation<BMsg<V>, ClientOut<V>>,
    /// The writer's process id.
    pub writer: ProcessId,
    /// The reader's process id.
    pub reader: ProcessId,
    /// The servers' process ids.
    pub servers: Vec<ProcessId>,
    log: OpLog<V>,
}

impl<V: Payload> BaselineSwsr<V> {
    /// Invokes `write(v)`. Values must be unique across the run.
    pub fn write(&mut self, v: V) -> OpId {
        let now = self.sim.now();
        let op = self.log.fresh(self.writer, now, Some(v.clone()));
        self.sim
            .with_node::<MaskingWriter<V>, _>(self.writer, |w, ctx| w.invoke_write(op, v, ctx));
        op
    }

    /// Invokes `read()`.
    pub fn read(&mut self) -> OpId {
        let now = self.sim.now();
        let op = self.log.fresh(self.reader, now, None);
        self.sim
            .with_node::<MaskingReader<V>, _>(self.reader, |r, ctx| r.invoke_read(op, ctx));
        op
    }

    /// Runs for `d` of virtual time, then records completions. (The
    /// quiescent family gossips forever, so `settle`-style full drain
    /// never happens; run for bounded spans instead.)
    pub fn run_for(&mut self, d: SimDuration) {
        self.sim.run_for(d);
        self.drain();
    }

    /// Runs until the queue drains or the horizon passes (only meaningful
    /// for the masking family — see [`BaselineSwsr::run_for`]).
    pub fn settle(&mut self) -> bool {
        let quiet = self
            .sim
            .run_until_quiescent(self.sim.now() + SETTLE_HORIZON);
        self.drain();
        quiet
    }

    /// Records completions emitted so far.
    pub fn drain(&mut self) {
        for (at, _pid, out) in self.sim.take_outputs() {
            match out {
                ClientOut::WriteDone { op } => self.log.complete(op, at, None),
                ClientOut::ReadDone { op, value } => self.log.complete(op, at, Some(value)),
            }
        }
    }

    /// The completed-operation history.
    pub fn history(&self) -> History<V> {
        self.log.history()
    }

    /// Operations invoked but not yet completed.
    pub fn pending_ops(&self) -> usize {
        self.log.pending()
    }

    /// Applies a transient fault to every server *now*.
    pub fn corrupt_all_servers(&mut self) {
        let now = self.sim.now();
        for s in self.servers.clone() {
            self.sim.schedule_corruption(now, s);
        }
    }

    /// Applies a transient fault to the writer and reader *now*.
    pub fn corrupt_clients(&mut self) {
        let now = self.sim.now();
        self.sim.schedule_corruption(now, self.writer);
        self.sim.schedule_corruption(now, self.reader);
    }
}
