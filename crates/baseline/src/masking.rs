//! Baseline 1: a classical Byzantine masking-quorum SWSR regular register
//! (à la Malkhi–Reiter), `n ≥ 4t + 1`, **not** self-stabilizing.
//!
//! The writer tags each write with an unbounded timestamp; a server adopts
//! `(ts, v)` iff `ts` is strictly newer; a reader accepts the
//! highest-timestamped pair reported identically by at least `t + 1`
//! servers among `n − t` replies.
//!
//! The construction tolerates `t` Byzantine servers in fault-free runs,
//! but a single transient fault can break it **forever**: corrupt the
//! servers' timestamps to large random values and the writer's fresh
//! timestamps are ignored by the adoption rule; no bounded mechanism ever
//! re-synchronizes. Experiment E8 measures exactly this, against the
//! paper's stabilizing register which recovers at the first post-fault
//! write.

use crate::msg::BMsg;
use sbs_core::{ClientOut, Payload};
use sbs_sim::{Context, DetRng, Node, OpId, ProcessId, SimDuration, TimerId};
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// Retransmission period for client rounds (same role as in `sbs-core`).
const RETRY: SimDuration = SimDuration::millis(50);

/// The masking-quorum server: keeps the highest-timestamped pair.
#[derive(Clone, Debug)]
pub struct MaskingServer<V> {
    ts: u64,
    val: V,
}

impl<V: Payload> MaskingServer<V> {
    /// Creates a server holding `(0, initial)`.
    pub fn new(initial: V) -> Self {
        MaskingServer {
            ts: 0,
            val: initial,
        }
    }

    /// The stored pair (for assertions).
    pub fn stored(&self) -> (u64, &V) {
        (self.ts, &self.val)
    }
}

impl<V: Payload> Node for MaskingServer<V> {
    type Msg = BMsg<V>;
    type Out = ClientOut<V>;

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BMsg<V>,
        ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>,
    ) {
        match msg {
            BMsg::Write { ts, val } => {
                if ts > self.ts {
                    self.ts = ts;
                    self.val = val;
                }
                ctx.send(from, BMsg::AckWrite { ts });
            }
            BMsg::Read { rid } => {
                ctx.send(
                    from,
                    BMsg::AckRead {
                        rid,
                        ts: self.ts,
                        val: self.val.clone(),
                    },
                );
            }
            _ => {}
        }
    }

    fn on_corrupt(&mut self, rng: &mut DetRng) {
        self.ts = rng.next_u64();
        self.val.scramble(rng);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The masking-quorum writer.
#[derive(Clone, Debug)]
pub struct MaskingWriter<V> {
    servers: Vec<ProcessId>,
    t: usize,
    ts: u64,
    pending: VecDeque<(OpId, V)>,
    active: Option<ActiveWrite<V>>,
}

#[derive(Clone, Debug)]
struct ActiveWrite<V> {
    op: OpId,
    ts: u64,
    val: V,
    acks: usize,
    timer: TimerId,
}

impl<V: Payload> MaskingWriter<V> {
    /// Creates the writer.
    pub fn new(servers: Vec<ProcessId>, t: usize) -> Self {
        MaskingWriter {
            servers,
            t,
            ts: 0,
            pending: VecDeque::new(),
            active: None,
        }
    }

    /// Invokes `write(v)`.
    pub fn invoke_write(&mut self, op: OpId, v: V, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        self.pending.push_back((op, v));
        self.try_start(ctx);
    }

    fn try_start(&mut self, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        if self.active.is_some() {
            return;
        }
        let Some((op, v)) = self.pending.pop_front() else {
            return;
        };
        self.ts += 1;
        let ts = self.ts;
        ctx.send_all(
            self.servers.iter().copied(),
            BMsg::Write { ts, val: v.clone() },
        );
        let timer = ctx.set_timer(RETRY);
        self.active = Some(ActiveWrite {
            op,
            ts,
            val: v,
            acks: 0,
            timer,
        });
    }
}

impl<V: Payload> Node for MaskingWriter<V> {
    type Msg = BMsg<V>;
    type Out = ClientOut<V>;

    fn on_message(
        &mut self,
        _from: ProcessId,
        msg: BMsg<V>,
        ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>,
    ) {
        let BMsg::AckWrite { ts } = msg else { return };
        let Some(active) = self.active.as_mut() else {
            return;
        };
        if ts != active.ts {
            return;
        }
        active.acks += 1;
        if active.acks >= self.servers.len() - self.t {
            let done = self.active.take().expect("checked above");
            ctx.cancel_timer(done.timer);
            ctx.output(ClientOut::WriteDone { op: done.op });
            self.try_start(ctx);
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        // Retransmit the in-flight write (the server adoption rule and the
        // ack counting are idempotent).
        let servers = self.servers.clone();
        if let Some(active) = self.active.as_mut() {
            if active.timer == id {
                ctx.send_all(
                    servers,
                    BMsg::Write {
                        ts: active.ts,
                        val: active.val.clone(),
                    },
                );
                active.acks = 0;
                active.timer = ctx.set_timer(RETRY);
            }
        }
    }

    fn on_corrupt(&mut self, rng: &mut DetRng) {
        // The unbounded counter is the Achilles heel.
        self.ts = rng.next_u64();
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The masking-quorum reader. The acceptance quorum is `t + 1` for the
/// `4t + 1` masking register and `2t + 1` for the `5t + 1` quiescent one.
#[derive(Clone, Debug)]
pub struct MaskingReader<V> {
    servers: Vec<ProcessId>,
    t: usize,
    accept_quorum: usize,
    next_rid: u64,
    pending: VecDeque<OpId>,
    active: Option<ActiveRead<V>>,
}

#[derive(Clone, Debug)]
struct ActiveRead<V> {
    op: OpId,
    rid: u64,
    replies: HashMap<ProcessId, (u64, V)>,
    timer: TimerId,
}

impl<V: Payload> MaskingReader<V> {
    /// Creates the reader with acceptance quorum `accept_quorum`.
    pub fn new(servers: Vec<ProcessId>, t: usize, accept_quorum: usize) -> Self {
        MaskingReader {
            servers,
            t,
            accept_quorum,
            next_rid: 0,
            pending: VecDeque::new(),
            active: None,
        }
    }

    /// Invokes `read()`.
    pub fn invoke_read(&mut self, op: OpId, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        self.pending.push_back(op);
        self.try_start(ctx);
    }

    fn try_start(&mut self, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        if self.active.is_some() {
            return;
        }
        let Some(op) = self.pending.pop_front() else {
            return;
        };
        self.start_round(op, ctx);
    }

    fn start_round(&mut self, op: OpId, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        self.next_rid += 1;
        let rid = self.next_rid;
        ctx.send_all(self.servers.iter().copied(), BMsg::Read { rid });
        let timer = ctx.set_timer(RETRY);
        self.active = Some(ActiveRead {
            op,
            rid,
            replies: HashMap::new(),
            timer,
        });
    }

    /// The masking-quorum acceptance rule: among the replies, the
    /// highest-timestamped pair reported identically by ≥ t+1 servers.
    fn decide(&self) -> Option<V> {
        let active = self.active.as_ref()?;
        let mut counts: HashMap<(u64, &V), usize> = HashMap::new();
        for (ts, v) in active.replies.values() {
            *counts.entry((*ts, v)).or_insert(0) += 1;
        }
        counts
            .into_iter()
            .filter(|&(_, c)| c >= self.accept_quorum)
            .max_by_key(|&((ts, _), _)| ts)
            .map(|((_, v), _)| v.clone())
    }
}

impl<V: Payload> Node for MaskingReader<V> {
    type Msg = BMsg<V>;
    type Out = ClientOut<V>;

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BMsg<V>,
        ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>,
    ) {
        let BMsg::AckRead { rid, ts, val } = msg else {
            return;
        };
        let Some(active) = self.active.as_mut() else {
            return;
        };
        if rid != active.rid {
            return;
        }
        active.replies.entry(from).or_insert((ts, val));
        if active.replies.len() >= self.servers.len() - self.t {
            if let Some(value) = self.decide() {
                let done = self.active.take().expect("active");
                ctx.cancel_timer(done.timer);
                ctx.output(ClientOut::ReadDone { op: done.op, value });
                self.try_start(ctx);
            }
            // No quorum on any pair: keep collecting; the retry timer will
            // start a fresh round.
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        if let Some(active) = self.active.as_ref() {
            if active.timer == id {
                let op = active.op;
                self.active = None;
                self.start_round(op, ctx);
            }
        }
    }

    fn on_corrupt(&mut self, rng: &mut DetRng) {
        self.next_rid = rng.next_u64() % (u64::MAX / 2);
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbs_sim::{Effects, SimTime};

    #[test]
    fn server_adopts_only_newer_timestamps() {
        let mut s = MaskingServer::new(0u64);
        let mut rng = DetRng::from_seed(1);
        let mut nt = 0u64;
        let mut eff: Effects<BMsg<u64>, ClientOut<u64>> = Effects::new();
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(9), &mut rng, &mut nt, &mut eff);
        s.on_message(ProcessId(0), BMsg::Write { ts: 5, val: 50 }, &mut ctx);
        assert_eq!(s.stored(), (5, &50));
        s.on_message(ProcessId(0), BMsg::Write { ts: 3, val: 30 }, &mut ctx);
        assert_eq!(s.stored(), (5, &50), "older timestamp rejected");
    }

    #[test]
    fn corrupted_server_timestamp_blocks_future_writes() {
        // The non-stabilization mechanism in miniature.
        let mut s = MaskingServer::new(0u64);
        let mut rng = DetRng::from_seed(2);
        s.on_corrupt(&mut rng);
        let (corrupt_ts, _) = s.stored();
        assert!(corrupt_ts > 1_000_000, "seeded corruption lands high");
        let mut nt = 0u64;
        let mut eff: Effects<BMsg<u64>, ClientOut<u64>> = Effects::new();
        let mut ctx = Context::new(SimTime::ZERO, ProcessId(9), &mut rng, &mut nt, &mut eff);
        s.on_message(ProcessId(0), BMsg::Write { ts: 1, val: 77 }, &mut ctx);
        assert_ne!(s.stored().1, &77, "fresh write ignored forever");
    }
}
