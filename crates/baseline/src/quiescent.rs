//! Baseline 2: a quiescence-dependent stabilizing regular register,
//! `n ≥ 5t + 1`, reconstructed in the spirit of Bonomi–Potop-Butucaru–
//! Tixeuil (reference [3] of the paper).
//!
//! The client protocol is the masking scheme with a larger read quorum
//! (`2t + 1` identical pairs out of `n − t` replies). What makes it
//! *stabilizing* is a server-to-server **cleaning round**: periodically,
//! servers exchange their `(ts, val)` pairs and, **provided no write was
//! observed during the round** (the paper's "write operation quiescence"
//! assumption), repair their state:
//!
//! - if `2t + 1` received pairs agree, adopt that pair (a correct recent
//!   state survives a partial corruption);
//! - otherwise the state is corrupt beyond recognition — adopt the
//!   *median-timestamp* report and **reset the timestamp to 0**, so that
//!   the writer's (possibly also corrupted-low) counter can win again.
//!
//! A write observed mid-round aborts the repair. Hence the contrast that
//! experiment E8 measures: under a write-quiescent window this register
//! recovers from transient faults; under a continuously writing client it
//! never does — while the paper's register needs *no* quiescence.

use crate::msg::BMsg;
use sbs_core::{ClientOut, Payload};
use sbs_sim::{Context, DetRng, Node, ProcessId, SimDuration, TimerId};
use std::any::Any;
use std::collections::HashMap;

/// How often servers run the cleaning round.
pub const CLEANING_PERIOD: SimDuration = SimDuration::millis(20);

/// The quiescence-dependent server: masking storage plus the cleaning
/// protocol.
#[derive(Clone, Debug)]
pub struct QuiescentServer<V> {
    peers: Vec<ProcessId>,
    t: usize,
    ts: u64,
    val: V,
    /// Reports collected during the current cleaning round.
    reports: HashMap<ProcessId, (u64, V)>,
    /// Set when a write arrives mid-round; aborts the repair.
    write_seen: bool,
    timer: Option<TimerId>,
}

impl<V: Payload> QuiescentServer<V> {
    /// Creates a server. `peers` are the *other* servers (for gossip).
    pub fn new(initial: V, peers: Vec<ProcessId>, t: usize) -> Self {
        QuiescentServer {
            peers,
            t,
            ts: 0,
            val: initial,
            reports: HashMap::new(),
            write_seen: false,
            timer: None,
        }
    }

    /// The stored pair (for assertions).
    pub fn stored(&self) -> (u64, &V) {
        (self.ts, &self.val)
    }

    /// The cleaning repair rule; runs only on write-quiescent rounds.
    #[allow(clippy::type_complexity, clippy::int_plus_one)]
    fn repair(&mut self) {
        // Include our own state among the reports.
        let mut all: Vec<(u64, V)> = self.reports.values().cloned().collect();
        all.push((self.ts, self.val.clone()));

        let mut counts: HashMap<(u64, &V), usize> = HashMap::new();
        for (ts, v) in &all {
            *counts.entry((*ts, v)).or_insert(0) += 1;
        }
        if let Some(((ts, v), _)) = counts
            .iter()
            .filter(|&(_, &c)| c >= 2 * self.t + 1)
            .max_by_key(|&(&(ts, _), _)| ts)
            .map(|(&(ts, v), &c)| ((ts, v.clone()), c))
        {
            self.ts = ts;
            self.val = v;
            return;
        }
        // No agreement: the state is corrupt. Adopt the median-timestamp
        // report and reset the counter so fresh writes win again.
        all.sort_by_key(|(ts, _)| *ts);
        let (_, median_val) = all[all.len() / 2].clone();
        self.ts = 0;
        self.val = median_val;
    }
}

impl<V: Payload> Node for QuiescentServer<V> {
    type Msg = BMsg<V>;
    type Out = ClientOut<V>;

    fn on_start(&mut self, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        self.timer = Some(ctx.set_timer(CLEANING_PERIOD));
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: BMsg<V>,
        ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>,
    ) {
        match msg {
            BMsg::Write { ts, val } => {
                self.write_seen = true;
                if ts > self.ts {
                    self.ts = ts;
                    self.val = val;
                }
                ctx.send(from, BMsg::AckWrite { ts });
            }
            BMsg::Read { rid } => {
                ctx.send(
                    from,
                    BMsg::AckRead {
                        rid,
                        ts: self.ts,
                        val: self.val.clone(),
                    },
                );
            }
            BMsg::Gossip { ts, val } => {
                self.reports.insert(from, (ts, val));
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, ctx: &mut Context<'_, BMsg<V>, ClientOut<V>>) {
        if self.timer != Some(id) {
            return;
        }
        // End of round: repair if quiescent, then start the next round by
        // gossiping the (possibly repaired) state.
        if !self.write_seen && self.reports.len() >= self.peers.len() - self.t {
            self.repair();
        }
        self.write_seen = false;
        self.reports.clear();
        ctx.send_all(
            self.peers.iter().copied(),
            BMsg::Gossip {
                ts: self.ts,
                val: self.val.clone(),
            },
        );
        self.timer = Some(ctx.set_timer(CLEANING_PERIOD));
    }

    fn on_corrupt(&mut self, rng: &mut DetRng) {
        self.ts = rng.next_u64();
        self.val.scramble(rng);
        self.reports.clear();
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(t: usize, n: usize) -> QuiescentServer<u64> {
        let peers = (1..n as u32).map(ProcessId).collect();
        QuiescentServer::new(0u64, peers, t)
    }

    #[test]
    fn repair_adopts_quorum_agreement() {
        let mut s = server(1, 6);
        s.ts = 999_999;
        s.val = 42424242;
        for i in 1..6 {
            s.reports.insert(ProcessId(i), (7, 70));
        }
        s.repair();
        assert_eq!(s.stored(), (7, &70));
    }

    #[test]
    fn repair_resets_timestamp_when_no_agreement() {
        let mut s = server(1, 6);
        s.ts = u64::MAX - 5;
        for i in 1..6 {
            s.reports.insert(ProcessId(i), (1000 + i as u64, i as u64));
        }
        s.repair();
        let (ts, _) = s.stored();
        assert_eq!(ts, 0, "corrupt state resets the counter");
    }

    #[test]
    fn writes_mark_the_round_dirty() {
        let mut s = server(1, 6);
        let mut rng = DetRng::from_seed(1);
        let mut nt = 0u64;
        let mut eff: sbs_sim::Effects<BMsg<u64>, ClientOut<u64>> = sbs_sim::Effects::new();
        let mut ctx = Context::new(
            sbs_sim::SimTime::ZERO,
            ProcessId(0),
            &mut rng,
            &mut nt,
            &mut eff,
        );
        s.on_message(ProcessId(9), BMsg::Write { ts: 1, val: 5 }, &mut ctx);
        assert!(s.write_seen);
    }
}
