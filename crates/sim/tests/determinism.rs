//! Property tests for the simulator's two foundational guarantees:
//! reproducibility (same seed ⇒ identical run) and per-link FIFO delivery
//! under arbitrary random topologies and traffic.

use proptest::prelude::*;
use sbs_sim::{
    Context, DelayModel, Message, Node, ProcessId, SimConfig, SimDuration, SimTime, Simulation,
};
use std::any::Any;

#[derive(Clone, Debug)]
struct Seq(u32, u64); // (stream id, sequence number)
impl Message for Seq {}

/// Emits nothing; records what it receives.
struct Sink {
    received: Vec<(ProcessId, u32, u64)>,
}
impl Node for Sink {
    type Msg = Seq;
    type Out = (ProcessId, u32, u64);
    fn on_message(&mut self, from: ProcessId, Seq(stream, n): Seq, ctx: &mut Context<'_, Seq, (ProcessId, u32, u64)>) {
        self.received.push((from, stream, n));
        ctx.output((from, stream, n));
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends `count` numbered messages per stream to the sink on start.
struct Source {
    sink: ProcessId,
    stream: u32,
    count: u64,
}
impl Node for Source {
    type Msg = Seq;
    type Out = (ProcessId, u32, u64);
    fn on_start(&mut self, ctx: &mut Context<'_, Seq, (ProcessId, u32, u64)>) {
        for n in 0..self.count {
            ctx.send(self.sink, Seq(self.stream, n));
        }
    }
    fn on_message(&mut self, _: ProcessId, _: Seq, _: &mut Context<'_, Seq, (ProcessId, u32, u64)>) {}
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run(seed: u64, sources: usize, count: u64, lo_us: u64, hi_us: u64) -> Vec<(SimTime, ProcessId, (ProcessId, u32, u64))> {
    let mut sim: Simulation<Seq, (ProcessId, u32, u64)> =
        Simulation::new(SimConfig::with_seed(seed));
    let sink = sim.reserve_id();
    let src_ids: Vec<ProcessId> = (0..sources).map(|_| sim.reserve_id()).collect();
    let delay = DelayModel::Uniform {
        lo: SimDuration::micros(lo_us),
        hi: SimDuration::micros(lo_us + hi_us),
    };
    for &s in &src_ids {
        sim.add_duplex(s, sink, delay.clone());
    }
    sim.add_node_at(sink, Sink { received: vec![] });
    for (i, &s) in src_ids.iter().enumerate() {
        sim.add_node_at(
            s,
            Source {
                sink,
                stream: i as u32,
                count,
            },
        );
    }
    assert!(sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2)));
    sim.take_outputs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Identical seeds produce bit-identical runs, event times included.
    #[test]
    fn prop_same_seed_same_run(
        seed in any::<u64>(),
        sources in 1usize..6,
        count in 1u64..20,
        lo in 1u64..500,
        spread in 1u64..5_000,
    ) {
        let a = run(seed, sources, count, lo, spread);
        let b = run(seed, sources, count, lo, spread);
        prop_assert_eq!(a, b);
    }

    /// Per-link FIFO: each source's messages arrive in send order at the
    /// sink no matter how delays are sampled.
    #[test]
    fn prop_links_are_fifo(
        seed in any::<u64>(),
        sources in 1usize..6,
        count in 1u64..30,
        lo in 1u64..100,
        spread in 1u64..10_000,
    ) {
        let outputs = run(seed, sources, count, lo, spread);
        for stream in 0..sources as u32 {
            let seq: Vec<u64> = outputs
                .iter()
                .filter(|(_, _, (_, s, _))| *s == stream)
                .map(|(_, _, (_, _, n))| *n)
                .collect();
            let expected: Vec<u64> = (0..count).collect();
            prop_assert_eq!(seq, expected, "stream {} out of order", stream);
        }
    }

    /// Different seeds almost always yield different interleavings (sanity
    /// check that the delay sampling actually uses the seed).
    #[test]
    fn prop_seed_matters(seed in 0u64..1000) {
        let a = run(seed, 3, 10, 1, 5_000);
        let b = run(seed + 1, 3, 10, 1, 5_000);
        // Timing must differ even if the logical order happens to agree.
        let times_a: Vec<SimTime> = a.iter().map(|(t, _, _)| *t).collect();
        let times_b: Vec<SimTime> = b.iter().map(|(t, _, _)| *t).collect();
        prop_assert_ne!(times_a, times_b);
    }
}
