//! Property tests for the simulator's two foundational guarantees:
//! reproducibility (same seed ⇒ identical run) and per-link FIFO delivery
//! under arbitrary random topologies and traffic.
//!
//! The cases are sampled deterministically from a seeded [`DetRng`] (the
//! workspace builds offline, so no external property-testing framework);
//! every failure therefore reproduces exactly.

use sbs_sim::{
    Context, DelayModel, DetRng, Message, Node, ProcessId, SimConfig, SimDuration, SimTime,
    Simulation,
};
use std::any::Any;

#[derive(Clone, Debug)]
struct Seq(u32, u64); // (stream id, sequence number)
impl Message for Seq {}

/// Emits nothing; records what it receives.
struct Sink {
    received: Vec<(ProcessId, u32, u64)>,
}
impl Node for Sink {
    type Msg = Seq;
    type Out = (ProcessId, u32, u64);
    fn on_message(
        &mut self,
        from: ProcessId,
        Seq(stream, n): Seq,
        ctx: &mut Context<'_, Seq, (ProcessId, u32, u64)>,
    ) {
        self.received.push((from, stream, n));
        ctx.output((from, stream, n));
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Sends `count` numbered messages per stream to the sink on start.
struct Source {
    sink: ProcessId,
    stream: u32,
    count: u64,
}
impl Node for Source {
    type Msg = Seq;
    type Out = (ProcessId, u32, u64);
    fn on_start(&mut self, ctx: &mut Context<'_, Seq, (ProcessId, u32, u64)>) {
        for n in 0..self.count {
            ctx.send(self.sink, Seq(self.stream, n));
        }
    }
    fn on_message(
        &mut self,
        _: ProcessId,
        _: Seq,
        _: &mut Context<'_, Seq, (ProcessId, u32, u64)>,
    ) {
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run(
    seed: u64,
    sources: usize,
    count: u64,
    lo_us: u64,
    hi_us: u64,
) -> Vec<(SimTime, ProcessId, (ProcessId, u32, u64))> {
    let mut sim: Simulation<Seq, (ProcessId, u32, u64)> =
        Simulation::new(SimConfig::with_seed(seed));
    let sink = sim.reserve_id();
    let src_ids: Vec<ProcessId> = (0..sources).map(|_| sim.reserve_id()).collect();
    let delay = DelayModel::Uniform {
        lo: SimDuration::micros(lo_us),
        hi: SimDuration::micros(lo_us + hi_us),
    };
    for &s in &src_ids {
        sim.add_duplex(s, sink, delay.clone());
    }
    sim.add_node_at(sink, Sink { received: vec![] });
    for (i, &s) in src_ids.iter().enumerate() {
        sim.add_node_at(
            s,
            Source {
                sink,
                stream: i as u32,
                count,
            },
        );
    }
    assert!(sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2)));
    sim.take_outputs()
}

/// One random case: topology and traffic parameters sampled from `rng`.
fn sample_case(rng: &mut DetRng) -> (u64, usize, u64, u64, u64) {
    (
        rng.next_u64(),                     // seed
        rng.range_inclusive(1, 5) as usize, // sources
        rng.range_inclusive(1, 25),         // count
        rng.range_inclusive(1, 500),        // lo (us)
        rng.range_inclusive(1, 8_000),      // spread (us)
    )
}

/// Identical seeds produce bit-identical runs, event times included.
#[test]
fn prop_same_seed_same_run() {
    let mut rng = DetRng::from_seed(0xD1CE);
    for _ in 0..32 {
        let (seed, sources, count, lo, spread) = sample_case(&mut rng);
        let a = run(seed, sources, count, lo, spread);
        let b = run(seed, sources, count, lo, spread);
        assert_eq!(a, b, "nondeterminism at seed {seed}");
    }
}

/// Per-link FIFO: each source's messages arrive in send order at the sink
/// no matter how delays are sampled.
#[test]
fn prop_links_are_fifo() {
    let mut rng = DetRng::from_seed(0xF1F0);
    for _ in 0..32 {
        let (seed, sources, count, lo, spread) = sample_case(&mut rng);
        let outputs = run(seed, sources, count, lo, spread);
        for stream in 0..sources as u32 {
            let seq: Vec<u64> = outputs
                .iter()
                .filter(|(_, _, (_, s, _))| *s == stream)
                .map(|(_, _, (_, _, n))| *n)
                .collect();
            let expected: Vec<u64> = (0..count).collect();
            assert_eq!(seq, expected, "seed {seed}: stream {stream} out of order");
        }
    }
}

/// Different seeds almost always yield different interleavings (sanity
/// check that the delay sampling actually uses the seed).
#[test]
fn prop_seed_matters() {
    let mut differing = 0;
    for seed in 0..50u64 {
        let a = run(seed, 3, 10, 1, 5_000);
        let b = run(seed + 1, 3, 10, 1, 5_000);
        let times_a: Vec<SimTime> = a.iter().map(|(t, _, _)| *t).collect();
        let times_b: Vec<SimTime> = b.iter().map(|(t, _, _)| *t).collect();
        if times_a != times_b {
            differing += 1;
        }
    }
    assert_eq!(differing, 50, "adjacent seeds must change event timing");
}
