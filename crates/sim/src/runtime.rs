//! A thread-backed runtime for the same [`Node`] state machines the
//! simulator hosts.
//!
//! Every node runs on its own OS thread; messages travel over unbounded
//! `std::sync::mpsc` channels (reliable and FIFO per sender→receiver pair,
//! matching the paper's link assumptions); timers are serviced with
//! `recv_timeout`. There is no virtual time — [`Context::now`] reports
//! wall-clock time since the runtime started, mapped onto [`SimTime`].
//!
//! The runtime exists to demonstrate that protocol implementations written
//! against [`Node`]/[`Context`] are not simulator-bound: the integration
//! tests run a full register deployment on threads and get the same answers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::id::{ProcessId, TimerId};
use crate::node::{Context, Effects, Message, Node};
use crate::rng::DetRng;
use crate::time::SimTime;

/// A one-shot closure executed on the node's thread with a live context.
type InvokeFn<M, O> =
    Box<dyn FnOnce(&mut dyn Node<Msg = M, Out = O>, &mut Context<'_, M, O>) + Send>;

enum Ctl<M, O> {
    Msg { from: ProcessId, msg: M },
    Invoke(InvokeFn<M, O>),
    Stop,
}

/// A running set of nodes, one OS thread each, fully connected by reliable
/// FIFO channels.
///
/// Create with [`ThreadRuntime::spawn`], drive with
/// [`ThreadRuntime::invoke`], observe with [`ThreadRuntime::recv_output`],
/// and stop with [`ThreadRuntime::shutdown`].
pub struct ThreadRuntime<M, O> {
    senders: Vec<Sender<Ctl<M, O>>>,
    outputs_rx: Receiver<(ProcessId, O)>,
    handles: Vec<JoinHandle<()>>,
}

impl<M, O> std::fmt::Debug for ThreadRuntime<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRuntime")
            .field("nodes", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl<M, O> ThreadRuntime<M, O>
where
    M: Message + Send,
    O: Send + 'static,
{
    /// Spawns one thread per node. Node `i` is addressed as `ProcessId(i)`.
    /// Each node's [`Node::on_start`] runs on its own thread before any
    /// message is processed.
    pub fn spawn(nodes: Vec<Box<dyn Node<Msg = M, Out = O> + Send>>, seed: u64) -> Self {
        let n = nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Ctl<M, O>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let (out_tx, out_rx) = channel::<(ProcessId, O)>();
        let epoch = Instant::now();

        let mut handles = Vec::with_capacity(n);
        for (i, (node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let me = ProcessId(i as u32);
            let senders = senders.clone();
            let out_tx = out_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("sbs-node-{i}"))
                .spawn(move || node_main(me, node, rx, senders, out_tx, seed, epoch))
                .expect("failed to spawn node thread");
            handles.push(handle);
        }

        ThreadRuntime {
            senders,
            outputs_rx: out_rx,
            handles,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the runtime hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Runs `f` on node `pid`'s thread against the concrete node type `N`,
    /// with a live [`Context`]. Returns immediately (fire-and-forget); the
    /// node observes the call as an extra zero-time handler execution.
    ///
    /// # Panics
    ///
    /// The *node thread* panics if the node at `pid` is not an `N`.
    pub fn invoke<N>(
        &self,
        pid: ProcessId,
        f: impl FnOnce(&mut N, &mut Context<'_, M, O>) + Send + 'static,
    ) where
        N: Node<Msg = M, Out = O>,
    {
        let wrapped = Box::new(
            move |node: &mut dyn Node<Msg = M, Out = O>, ctx: &mut Context<'_, M, O>| {
                let node = node
                    .as_any_mut()
                    .downcast_mut::<N>()
                    .unwrap_or_else(|| panic!("node is not a {}", std::any::type_name::<N>()));
                f(node, ctx);
            },
        );
        // A send can only fail after shutdown; ignore in that case.
        let _ = self.senders[pid.index()].send(Ctl::Invoke(wrapped));
    }

    /// Injects a message into node `to` as if sent by `from`. Intended for
    /// tests that impersonate a peer (e.g. Byzantine behaviour from outside).
    pub fn inject(&self, from: ProcessId, to: ProcessId, msg: M) {
        let _ = self.senders[to.index()].send(Ctl::Msg { from, msg });
    }

    /// Waits up to `timeout` for the next output event.
    pub fn recv_output(&self, timeout: Duration) -> Option<(ProcessId, O)> {
        self.outputs_rx.recv_timeout(timeout).ok()
    }

    /// Drains any outputs that are immediately available.
    pub fn drain_outputs(&self) -> Vec<(ProcessId, O)> {
        let mut v = Vec::new();
        while let Ok(o) = self.outputs_rx.try_recv() {
            v.push(o);
        }
        v
    }

    /// Stops every node thread and waits for them to exit.
    pub fn shutdown(mut self) {
        for tx in &self.senders {
            let _ = tx.send(Ctl::Stop);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M, O> Drop for ThreadRuntime<M, O> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Ctl::Stop);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn node_main<M, O>(
    me: ProcessId,
    mut node: Box<dyn Node<Msg = M, Out = O> + Send>,
    rx: Receiver<Ctl<M, O>>,
    senders: Vec<Sender<Ctl<M, O>>>,
    out_tx: Sender<(ProcessId, O)>,
    seed: u64,
    epoch: Instant,
) where
    M: Message + Send,
    O: Send + 'static,
{
    let mut rng = DetRng::derive(seed, me.0 as u64);
    let mut next_timer: u64 = 0;
    // (deadline, id) min-heap plus tombstones for cancellations.
    let mut timers: BinaryHeap<Reverse<(Instant, TimerId)>> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerId> = HashSet::new();

    let run_handler =
        |node: &mut Box<dyn Node<Msg = M, Out = O> + Send>,
         rng: &mut DetRng,
         next_timer: &mut u64,
         timers: &mut BinaryHeap<Reverse<(Instant, TimerId)>>,
         cancelled: &mut HashSet<TimerId>,
         f: &mut dyn FnMut(&mut dyn Node<Msg = M, Out = O>, &mut Context<'_, M, O>)| {
            let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
            let mut effects: Effects<M, O> = Effects::new();
            {
                let mut ctx = Context::new(now, me, rng, next_timer, &mut effects);
                f(node.as_mut(), &mut ctx);
            }
            // The thread runtime keeps no Metrics or Tracer, so handler
            // telemetry (slow-path counters, trace events) is discarded.
            let Effects {
                sends,
                timers_set,
                timers_cancelled,
                outputs,
                ..
            } = effects;
            for (to, msg) in sends {
                if let Some(tx) = senders.get(to.index()) {
                    let _ = tx.send(Ctl::Msg { from: me, msg });
                }
            }
            let base = Instant::now();
            for (id, delay) in timers_set {
                let deadline = base + Duration::from_nanos(delay.as_nanos());
                timers.push(Reverse((deadline, id)));
            }
            for id in timers_cancelled {
                cancelled.insert(id);
            }
            for out in outputs {
                let _ = out_tx.send((me, out));
            }
        };

    // on_start
    run_handler(
        &mut node,
        &mut rng,
        &mut next_timer,
        &mut timers,
        &mut cancelled,
        &mut |n, ctx| n.on_start(ctx),
    );

    loop {
        // Fire all due timers first.
        loop {
            match timers.peek() {
                Some(&Reverse((deadline, id))) if deadline <= Instant::now() => {
                    timers.pop();
                    if !cancelled.remove(&id) {
                        run_handler(
                            &mut node,
                            &mut rng,
                            &mut next_timer,
                            &mut timers,
                            &mut cancelled,
                            &mut |n, ctx| n.on_timer(id, ctx),
                        );
                    }
                }
                _ => break,
            }
        }
        let ctl = match timers.peek() {
            Some(&Reverse((deadline, _))) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ctl) => ctl,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match rx.recv() {
                Ok(ctl) => ctl,
                Err(_) => return,
            },
        };
        match ctl {
            Ctl::Msg { from, msg } => {
                run_handler(
                    &mut node,
                    &mut rng,
                    &mut next_timer,
                    &mut timers,
                    &mut cancelled,
                    &mut |n, ctx| {
                        // `msg` is moved in via Option to satisfy FnMut.
                        n.on_message(from, msg.clone(), ctx)
                    },
                );
            }
            Ctl::Invoke(f) => {
                let mut f = Some(f);
                run_handler(
                    &mut node,
                    &mut rng,
                    &mut next_timer,
                    &mut timers,
                    &mut cancelled,
                    &mut |n, ctx| {
                        if let Some(f) = f.take() {
                            f(n, ctx)
                        }
                    },
                );
            }
            Ctl::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum TMsg {
        Ping(u32),
        Pong(u32),
    }
    impl Message for TMsg {}

    struct Echo;
    impl Node for Echo {
        type Msg = TMsg;
        type Out = u32;
        fn on_message(&mut self, from: ProcessId, msg: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
            if let TMsg::Ping(v) = msg {
                ctx.send(from, TMsg::Pong(v));
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Pinger {
        server: ProcessId,
    }
    impl Node for Pinger {
        type Msg = TMsg;
        type Out = u32;
        fn on_message(&mut self, _from: ProcessId, msg: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
            if let TMsg::Pong(v) = msg {
                ctx.output(v);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn threads_round_trip() {
        let nodes: Vec<Box<dyn Node<Msg = TMsg, Out = u32> + Send>> = vec![
            Box::new(Echo),
            Box::new(Pinger {
                server: ProcessId(0),
            }),
        ];
        let rt = ThreadRuntime::spawn(nodes, 1);
        rt.invoke::<Pinger>(ProcessId(1), |n, ctx| {
            let server = n.server;
            ctx.send(server, TMsg::Ping(41));
        });
        let (pid, v) = rt
            .recv_output(Duration::from_secs(5))
            .expect("pong should arrive");
        assert_eq!(pid, ProcessId(1));
        assert_eq!(v, 41);
        rt.shutdown();
    }

    #[test]
    fn timers_fire_on_threads() {
        struct Alarm;
        impl Node for Alarm {
            type Msg = TMsg;
            type Out = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, TMsg, u32>) {
                ctx.set_timer(SimDuration::millis(5));
            }
            fn on_message(&mut self, _: ProcessId, _: TMsg, _: &mut Context<'_, TMsg, u32>) {}
            fn on_timer(&mut self, _: TimerId, ctx: &mut Context<'_, TMsg, u32>) {
                ctx.output(99);
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let rt: ThreadRuntime<TMsg, u32> = ThreadRuntime::spawn(vec![Box::new(Alarm)], 2);
        let (_, v) = rt
            .recv_output(Duration::from_secs(5))
            .expect("timer output");
        assert_eq!(v, 99);
        rt.shutdown();
    }

    #[test]
    fn inject_impersonates_a_peer() {
        let rt: ThreadRuntime<TMsg, u32> = ThreadRuntime::spawn(
            vec![Box::new(Pinger {
                server: ProcessId(0),
            })],
            3,
        );
        rt.inject(ProcessId(0), ProcessId(0), TMsg::Pong(7));
        let (_, v) = rt.recv_output(Duration::from_secs(5)).expect("output");
        assert_eq!(v, 7);
        rt.shutdown();
    }

    #[test]
    fn drain_outputs_is_nonblocking() {
        let rt: ThreadRuntime<TMsg, u32> = ThreadRuntime::spawn(vec![Box::new(Echo)], 4);
        assert!(rt.drain_outputs().is_empty());
        assert_eq!(rt.len(), 1);
        assert!(!rt.is_empty());
        rt.shutdown();
    }
}
