//! A thread-backed runtime for the same [`Node`] state machines the
//! simulator hosts.
//!
//! Every node runs on its own OS thread; messages leave through a
//! [`Transport`] — by default [`LocalTransport`], unbounded
//! `std::sync::mpsc` channels (reliable and FIFO per sender→receiver pair,
//! matching the paper's link assumptions), but a deployment can supply any
//! other backend (e.g. the TCP transport in `sbs-net`) via
//! [`ThreadRuntime::spawn_with_transport`] without touching the nodes.
//! Timers are serviced with `recv_timeout`. There is no virtual time —
//! [`Context::now`] reports wall-clock time since the runtime started,
//! mapped onto [`SimTime`].
//!
//! The runtime exists to demonstrate that protocol implementations written
//! against [`Node`]/[`Context`] are not simulator-bound: the integration
//! tests run a full register deployment on threads and get the same answers.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::id::{ProcessId, TimerId};
use crate::metrics::SlowPath;
use crate::node::{Context, Effects, Message, Node};
use crate::rng::DetRng;
use crate::time::SimTime;

/// A one-shot closure executed on the node's thread with a live context.
type InvokeFn<M, O> =
    Box<dyn FnOnce(&mut dyn Node<Msg = M, Out = O>, &mut Context<'_, M, O>) + Send>;

enum Ctl<M, O> {
    Msg { from: ProcessId, msg: M },
    Invoke(InvokeFn<M, O>),
    Stop,
}

/// Where a node's outbound messages go.
///
/// The handler contract ([`Node`]/[`Context`]) records sends into
/// [`Effects`]; a [`ThreadRuntime`] applies them by handing each
/// `(to, msg)` pair to the node's `Transport`. The default backend is
/// [`LocalTransport`] (in-process mpsc); `sbs-net` provides a TCP
/// backend. Delivery is best-effort from the runtime's point of view:
/// a transport that cannot deliver drops the message, exactly like a
/// lossy link in the simulator — the protocols already tolerate loss.
pub trait Transport<M>: Send + 'static {
    /// Delivers `msg` from `from` to `to` (or drops it on failure).
    fn send(&mut self, from: ProcessId, to: ProcessId, msg: M);
}

/// A cloneable handle that feeds messages straight into one node's inbox,
/// as if sent by an arbitrary peer.
///
/// This is the receive half a custom [`Transport`] backend needs: a TCP
/// reader thread that decodes a frame from peer `p` calls
/// `injector.inject(p, msg)` and the hosting node observes an ordinary
/// `on_message`. The claimed sender is trusted, with the same
/// impersonation semantics as [`ThreadRuntime::inject`].
pub struct MsgInjector<M, O> {
    tx: Sender<Ctl<M, O>>,
}

// Manual impls: a derive would wrongly require `M: Clone`/`O: Clone`.
impl<M, O> Clone for MsgInjector<M, O> {
    fn clone(&self) -> Self {
        MsgInjector {
            tx: self.tx.clone(),
        }
    }
}

impl<M, O> std::fmt::Debug for MsgInjector<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsgInjector").finish_non_exhaustive()
    }
}

impl<M, O> MsgInjector<M, O> {
    /// Enqueues `msg` for the target node as if sent by `from`. Silently
    /// drops the message after the runtime has shut down.
    pub fn inject(&self, from: ProcessId, msg: M) {
        let _ = self.tx.send(Ctl::Msg { from, msg });
    }
}

/// The in-process [`Transport`]: every send goes over the target node's
/// mpsc channel. Reliable and FIFO per ordered pair of nodes.
pub struct LocalTransport<M, O> {
    injectors: Vec<MsgInjector<M, O>>,
}

impl<M, O> LocalTransport<M, O> {
    /// A transport that can reach every node behind the given injectors
    /// (indexed by [`ProcessId::index`]).
    pub fn new(injectors: Vec<MsgInjector<M, O>>) -> Self {
        LocalTransport { injectors }
    }
}

impl<M, O> std::fmt::Debug for LocalTransport<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalTransport")
            .field("nodes", &self.injectors.len())
            .finish()
    }
}

impl<M, O> Transport<M> for LocalTransport<M, O>
where
    M: Send + 'static,
    O: Send + 'static,
{
    fn send(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        if let Some(inj) = self.injectors.get(to.index()) {
            inj.inject(from, msg);
        }
    }
}

/// A running set of nodes, one OS thread each, connected by a pluggable
/// [`Transport`] (reliable in-process channels by default).
///
/// Create with [`ThreadRuntime::spawn`] (or
/// [`ThreadRuntime::spawn_with_transport`] for a custom backend), drive
/// with [`ThreadRuntime::invoke`], observe with
/// [`ThreadRuntime::recv_output`], and stop with
/// [`ThreadRuntime::shutdown`].
pub struct ThreadRuntime<M, O> {
    senders: Vec<Sender<Ctl<M, O>>>,
    outputs_rx: Receiver<(ProcessId, O)>,
    handles: Vec<JoinHandle<()>>,
    slow: Arc<Mutex<SlowPath>>,
}

impl<M, O> std::fmt::Debug for ThreadRuntime<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadRuntime")
            .field("nodes", &self.senders.len())
            .finish_non_exhaustive()
    }
}

impl<M, O> ThreadRuntime<M, O>
where
    M: Message + Send,
    O: Send + 'static,
{
    /// Spawns one thread per node on the in-process [`LocalTransport`].
    /// Node `i` is addressed as `ProcessId(i)`. Each node's
    /// [`Node::on_start`] runs on its own thread before any message is
    /// processed.
    pub fn spawn(nodes: Vec<Box<dyn Node<Msg = M, Out = O> + Send>>, seed: u64) -> Self {
        Self::spawn_with_transport(nodes, seed, |_, injectors| {
            Box::new(LocalTransport::new(injectors.to_vec()))
        })
    }

    /// Spawns one thread per node, each sending through the transport
    /// `mk_transport` builds for it. The factory receives the node's own
    /// id and injector handles for *every* node in this runtime, so a
    /// backend can mix local and remote delivery (e.g. loop self-sends
    /// back in-process while shipping peer traffic over TCP).
    pub fn spawn_with_transport(
        nodes: Vec<Box<dyn Node<Msg = M, Out = O> + Send>>,
        seed: u64,
        mut mk_transport: impl FnMut(ProcessId, &[MsgInjector<M, O>]) -> Box<dyn Transport<M>>,
    ) -> Self {
        let n = nodes.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Ctl<M, O>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let injectors: Vec<MsgInjector<M, O>> = senders
            .iter()
            .map(|tx| MsgInjector { tx: tx.clone() })
            .collect();
        let (out_tx, out_rx) = channel::<(ProcessId, O)>();
        let epoch = Instant::now();
        let slow = Arc::new(Mutex::new(SlowPath::default()));

        let mut handles = Vec::with_capacity(n);
        for (i, (node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let me = ProcessId(i as u32);
            let transport = mk_transport(me, &injectors);
            let out_tx = out_tx.clone();
            let slow = Arc::clone(&slow);
            let handle = std::thread::Builder::new()
                .name(format!("sbs-node-{i}"))
                .spawn(move || node_main(me, node, rx, transport, out_tx, seed, epoch, slow))
                .expect("failed to spawn node thread");
            handles.push(handle);
        }

        ThreadRuntime {
            senders,
            outputs_rx: out_rx,
            handles,
            slow,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// True if the runtime hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// An inbox handle for node `to`, for external delivery sources
    /// (custom transports' reader threads).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn injector(&self, to: ProcessId) -> MsgInjector<M, O> {
        MsgInjector {
            tx: self.senders[to.index()].clone(),
        }
    }

    /// Slow-path counters folded from every handler execution on every
    /// node thread so far — the same tallies
    /// [`Metrics::slow_paths`](crate::Metrics::slow_paths) accumulates
    /// in the simulator.
    pub fn slow_paths(&self) -> SlowPath {
        *self.slow.lock().expect("slow-path counter lock poisoned")
    }

    /// Runs `f` on node `pid`'s thread against the concrete node type `N`,
    /// with a live [`Context`]. Returns immediately (fire-and-forget); the
    /// node observes the call as an extra zero-time handler execution.
    ///
    /// # Panics
    ///
    /// The *node thread* panics if the node at `pid` is not an `N`.
    pub fn invoke<N>(
        &self,
        pid: ProcessId,
        f: impl FnOnce(&mut N, &mut Context<'_, M, O>) + Send + 'static,
    ) where
        N: Node<Msg = M, Out = O>,
    {
        let wrapped = Box::new(
            move |node: &mut dyn Node<Msg = M, Out = O>, ctx: &mut Context<'_, M, O>| {
                let node = node
                    .as_any_mut()
                    .downcast_mut::<N>()
                    .unwrap_or_else(|| panic!("node is not a {}", std::any::type_name::<N>()));
                f(node, ctx);
            },
        );
        // A send can only fail after shutdown; ignore in that case.
        let _ = self.senders[pid.index()].send(Ctl::Invoke(wrapped));
    }

    /// Injects a message into node `to` as if sent by `from`. Intended for
    /// tests that impersonate a peer (e.g. Byzantine behaviour from outside).
    pub fn inject(&self, from: ProcessId, to: ProcessId, msg: M) {
        let _ = self.senders[to.index()].send(Ctl::Msg { from, msg });
    }

    /// Waits up to `timeout` for the next output event.
    pub fn recv_output(&self, timeout: Duration) -> Option<(ProcessId, O)> {
        self.outputs_rx.recv_timeout(timeout).ok()
    }

    /// Drains any outputs that are immediately available.
    pub fn drain_outputs(&self) -> Vec<(ProcessId, O)> {
        let mut v = Vec::new();
        while let Ok(o) = self.outputs_rx.try_recv() {
            v.push(o);
        }
        v
    }

    /// Stops every node thread and waits for them to exit.
    pub fn shutdown(mut self) {
        for tx in &self.senders {
            let _ = tx.send(Ctl::Stop);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<M, O> Drop for ThreadRuntime<M, O> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Ctl::Stop);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn node_main<M, O>(
    me: ProcessId,
    mut node: Box<dyn Node<Msg = M, Out = O> + Send>,
    rx: Receiver<Ctl<M, O>>,
    mut transport: Box<dyn Transport<M>>,
    out_tx: Sender<(ProcessId, O)>,
    seed: u64,
    epoch: Instant,
    slow: Arc<Mutex<SlowPath>>,
) where
    M: Message + Send,
    O: Send + 'static,
{
    let mut rng = DetRng::derive(seed, me.0 as u64);
    let mut next_timer: u64 = 0;
    // (deadline, id) min-heap plus tombstones for cancellations.
    let mut timers: BinaryHeap<Reverse<(Instant, TimerId)>> = BinaryHeap::new();
    let mut cancelled: HashSet<TimerId> = HashSet::new();

    let run_handler =
        |node: &mut Box<dyn Node<Msg = M, Out = O> + Send>,
         rng: &mut DetRng,
         next_timer: &mut u64,
         timers: &mut BinaryHeap<Reverse<(Instant, TimerId)>>,
         cancelled: &mut HashSet<TimerId>,
         transport: &mut Box<dyn Transport<M>>,
         f: &mut dyn FnMut(&mut dyn Node<Msg = M, Out = O>, &mut Context<'_, M, O>)| {
            let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
            let mut effects: Effects<M, O> = Effects::new();
            {
                let mut ctx = Context::new(now, me, rng, next_timer, &mut effects);
                f(node.as_mut(), &mut ctx);
            }
            // The thread runtime keeps no Tracer, so trace events are
            // discarded, but slow-path counters fold into a shared tally
            // so thread/socket runs report the same SlowPath as sim runs.
            let Effects {
                sends,
                timers_set,
                timers_cancelled,
                outputs,
                slow: handler_slow,
                ..
            } = effects;
            if !handler_slow.is_zero() {
                slow.lock()
                    .expect("slow-path counter lock poisoned")
                    .fold(&handler_slow);
            }
            for (to, msg) in sends {
                transport.send(me, to, msg);
            }
            let base = Instant::now();
            for (id, delay) in timers_set {
                let deadline = base + Duration::from_nanos(delay.as_nanos());
                timers.push(Reverse((deadline, id)));
            }
            for id in timers_cancelled {
                cancelled.insert(id);
            }
            for out in outputs {
                let _ = out_tx.send((me, out));
            }
        };

    // on_start
    run_handler(
        &mut node,
        &mut rng,
        &mut next_timer,
        &mut timers,
        &mut cancelled,
        &mut transport,
        &mut |n, ctx| n.on_start(ctx),
    );

    loop {
        // Fire all due timers first.
        loop {
            match timers.peek() {
                Some(&Reverse((deadline, id))) if deadline <= Instant::now() => {
                    timers.pop();
                    if !cancelled.remove(&id) {
                        run_handler(
                            &mut node,
                            &mut rng,
                            &mut next_timer,
                            &mut timers,
                            &mut cancelled,
                            &mut transport,
                            &mut |n, ctx| n.on_timer(id, ctx),
                        );
                    }
                }
                _ => break,
            }
        }
        let ctl = match timers.peek() {
            Some(&Reverse((deadline, _))) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ctl) => ctl,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
            None => match rx.recv() {
                Ok(ctl) => ctl,
                Err(_) => return,
            },
        };
        match ctl {
            Ctl::Msg { from, msg } => {
                run_handler(
                    &mut node,
                    &mut rng,
                    &mut next_timer,
                    &mut timers,
                    &mut cancelled,
                    &mut transport,
                    &mut |n, ctx| {
                        // `msg` is moved in via Option to satisfy FnMut.
                        n.on_message(from, msg.clone(), ctx)
                    },
                );
            }
            Ctl::Invoke(f) => {
                let mut f = Some(f);
                run_handler(
                    &mut node,
                    &mut rng,
                    &mut next_timer,
                    &mut timers,
                    &mut cancelled,
                    &mut transport,
                    &mut |n, ctx| {
                        if let Some(f) = f.take() {
                            f(n, ctx)
                        }
                    },
                );
            }
            Ctl::Stop => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum TMsg {
        Ping(u32),
        Pong(u32),
    }
    impl Message for TMsg {}

    struct Echo;
    impl Node for Echo {
        type Msg = TMsg;
        type Out = u32;
        fn on_message(&mut self, from: ProcessId, msg: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
            if let TMsg::Ping(v) = msg {
                ctx.send(from, TMsg::Pong(v));
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Pinger {
        server: ProcessId,
    }
    impl Node for Pinger {
        type Msg = TMsg;
        type Out = u32;
        fn on_message(&mut self, _from: ProcessId, msg: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
            if let TMsg::Pong(v) = msg {
                ctx.output(v);
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn threads_round_trip() {
        let nodes: Vec<Box<dyn Node<Msg = TMsg, Out = u32> + Send>> = vec![
            Box::new(Echo),
            Box::new(Pinger {
                server: ProcessId(0),
            }),
        ];
        let rt = ThreadRuntime::spawn(nodes, 1);
        rt.invoke::<Pinger>(ProcessId(1), |n, ctx| {
            let server = n.server;
            ctx.send(server, TMsg::Ping(41));
        });
        let (pid, v) = rt
            .recv_output(Duration::from_secs(5))
            .expect("pong should arrive");
        assert_eq!(pid, ProcessId(1));
        assert_eq!(v, 41);
        rt.shutdown();
    }

    #[test]
    fn timers_fire_on_threads() {
        struct Alarm;
        impl Node for Alarm {
            type Msg = TMsg;
            type Out = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, TMsg, u32>) {
                ctx.set_timer(SimDuration::millis(5));
            }
            fn on_message(&mut self, _: ProcessId, _: TMsg, _: &mut Context<'_, TMsg, u32>) {}
            fn on_timer(&mut self, _: TimerId, ctx: &mut Context<'_, TMsg, u32>) {
                ctx.output(99);
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let rt: ThreadRuntime<TMsg, u32> = ThreadRuntime::spawn(vec![Box::new(Alarm)], 2);
        let (_, v) = rt
            .recv_output(Duration::from_secs(5))
            .expect("timer output");
        assert_eq!(v, 99);
        rt.shutdown();
    }

    #[test]
    fn inject_impersonates_a_peer() {
        let rt: ThreadRuntime<TMsg, u32> = ThreadRuntime::spawn(
            vec![Box::new(Pinger {
                server: ProcessId(0),
            })],
            3,
        );
        rt.inject(ProcessId(0), ProcessId(0), TMsg::Pong(7));
        let (_, v) = rt.recv_output(Duration::from_secs(5)).expect("output");
        assert_eq!(v, 7);
        rt.shutdown();
    }

    #[test]
    fn drain_outputs_is_nonblocking() {
        let rt: ThreadRuntime<TMsg, u32> = ThreadRuntime::spawn(vec![Box::new(Echo)], 4);
        assert!(rt.drain_outputs().is_empty());
        assert_eq!(rt.len(), 1);
        assert!(!rt.is_empty());
        rt.shutdown();
    }

    #[test]
    fn slow_paths_fold_across_node_threads() {
        let nodes: Vec<Box<dyn Node<Msg = TMsg, Out = u32> + Send>> =
            vec![Box::new(Echo), Box::new(Echo)];
        let rt = ThreadRuntime::spawn(nodes, 5);
        assert!(rt.slow_paths().is_zero());
        for pid in [ProcessId(0), ProcessId(1)] {
            rt.invoke::<Echo>(pid, |_, ctx| {
                ctx.note_retransmit();
                ctx.note_metadata_reread();
                ctx.output(1);
            });
        }
        // Outputs flush after the handler's effects, so two outputs mean
        // both folds have happened.
        for _ in 0..2 {
            rt.recv_output(Duration::from_secs(5)).expect("ack output");
        }
        let slow = rt.slow_paths();
        assert_eq!(slow.retransmits, 2);
        assert_eq!(slow.metadata_rereads, 2);
        assert_eq!(slow.dead_fetch_rounds, 0);
        rt.shutdown();
    }

    #[test]
    fn custom_transport_reroutes_sends() {
        // A transport that delivers every send to node 0, whoever it was
        // addressed to — proving spawn_with_transport controls routing.
        struct Funnel {
            all_to_zero: MsgInjector<TMsg, u32>,
        }
        impl Transport<TMsg> for Funnel {
            fn send(&mut self, from: ProcessId, _to: ProcessId, msg: TMsg) {
                self.all_to_zero.inject(from, msg);
            }
        }
        let nodes: Vec<Box<dyn Node<Msg = TMsg, Out = u32> + Send>> = vec![
            Box::new(Pinger {
                server: ProcessId(1),
            }),
            Box::new(Echo),
        ];
        let rt = ThreadRuntime::spawn_with_transport(nodes, 6, |_, injectors| {
            Box::new(Funnel {
                all_to_zero: injectors[0].clone(),
            })
        });
        // Node 1 (Echo) answers a ping with a pong addressed back to the
        // sender; the funnel delivers it to node 0 (Pinger) regardless.
        rt.injector(ProcessId(1))
            .inject(ProcessId(2), TMsg::Ping(13));
        let (pid, v) = rt.recv_output(Duration::from_secs(5)).expect("funneled");
        assert_eq!(pid, ProcessId(0));
        assert_eq!(v, 13);
        rt.shutdown();
    }
}
