//! The deterministic discrete-event simulator.
//!
//! [`Simulation`] hosts a set of [`Node`] state machines connected by FIFO
//! reliable links with configurable delays, and processes events (message
//! deliveries, timer firings, injected faults) in virtual-time order. Runs
//! are fully deterministic given the seed in [`SimConfig`].
//!
//! # Model correspondence
//!
//! | Paper (§2.1)                          | Here                                  |
//! |---------------------------------------|---------------------------------------|
//! | asynchronous sequential processes     | [`Node`] handlers, zero virtual time  |
//! | FIFO reliable directed links          | [`LinkState`] + FIFO-preserving scheduling |
//! | arbitrary finite transfer delay       | [`DelayModel`]                        |
//! | transient failures (arbitrary state)  | [`Simulation::schedule_corruption`], [`Simulation::schedule_link_garbage`], [`Simulation::wipe_link`] |
//! | Byzantine servers                     | adversarial `Node` impls, [`Simulation::replace_node`] |

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::id::{ProcessId, TimerId};
use crate::link::{DelayModel, LinkState};
use crate::metrics::Metrics;
use crate::node::{Context, Effects, Message, Node};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use sbs_obs::{TraceEvent, Tracer};

/// Configuration for a [`Simulation`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; every random stream in the run derives from it.
    pub seed: u64,
    /// Delay model used by [`Simulation::add_duplex_default`] helpers.
    pub default_delay: DelayModel,
    /// Safety cap on processed events. Exceeding it panics — it almost
    /// always means a protocol livelock, which tests should fail loudly.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            default_delay: DelayModel::default_async(),
            max_events: 50_000_000,
        }
    }
}

impl SimConfig {
    /// A config with the given seed and defaults for everything else.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }
}

enum EventKind<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        generation: u64,
        /// Harness-side envelope id stamped at routing time — purely an
        /// observability handle (never serialized on the wire), tying
        /// the `MessageSent` trace record to its `MessageDelivered`.
        env: u64,
    },
    Timer {
        pid: ProcessId,
        id: TimerId,
    },
    Corrupt {
        pid: ProcessId,
    },
    InjectGarbage {
        from: ProcessId,
        to: ProcessId,
    },
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event;
    /// ties broken by insertion order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

type GarbageGen<M> = Box<dyn FnMut(&mut DetRng, ProcessId, ProcessId) -> M>;

/// A deterministic discrete-event simulation of message-passing nodes.
///
/// Generic over the message type `M` shared by all nodes and the output
/// event type `O` nodes emit toward the harness.
///
/// ```
/// use sbs_sim::{Context, Message, Node, ProcessId, SimConfig, Simulation};
/// use std::any::Any;
///
/// #[derive(Clone, Debug)]
/// struct Hello;
/// impl Message for Hello {}
///
/// struct Greeter { peer: Option<ProcessId> }
/// impl Node for Greeter {
///     type Msg = Hello;
///     type Out = &'static str;
///     fn on_start(&mut self, ctx: &mut Context<'_, Hello, &'static str>) {
///         if let Some(peer) = self.peer {
///             ctx.send(peer, Hello);
///         }
///     }
///     fn on_message(&mut self, _from: ProcessId, _msg: Hello,
///                   ctx: &mut Context<'_, Hello, &'static str>) {
///         ctx.output("greeted");
///     }
///     fn as_any_mut(&mut self) -> &mut dyn Any { self }
/// }
///
/// let mut sim: Simulation<Hello, &'static str> = Simulation::new(SimConfig::default());
/// let a = sim.reserve_id();
/// let b = sim.reserve_id();
/// sim.add_duplex_default(a, b);
/// sim.add_node_at(a, Greeter { peer: Some(b) });
/// sim.add_node_at(b, Greeter { peer: None });
/// sim.with_node::<Greeter, _>(a, |n, ctx| {
///     let peer = n.peer.unwrap();
///     ctx.send(peer, Hello);
/// });
/// assert!(sim.run_until_quiescent(sbs_sim::SimTime::from_nanos(u64::MAX / 2)));
/// let outs = sim.take_outputs();
/// assert_eq!(outs.len(), 2); // on_start send + explicit send
/// ```
pub struct Simulation<M: Message, O> {
    cfg: SimConfig,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    nodes: Vec<Option<Box<dyn Node<Msg = M, Out = O>>>>,
    rngs: Vec<DetRng>,
    /// Directed links, dense: `links[from][to]`. Process ids are small
    /// dense integers, so the delivery path indexes instead of hashing.
    links: Vec<Vec<Option<LinkState>>>,
    cancelled: HashSet<TimerId>,
    next_timer: u64,
    outputs: Vec<(SimTime, ProcessId, O)>,
    metrics: Metrics,
    garbage_gen: Option<GarbageGen<M>>,
    net_rng: DetRng,
    fault_rng: DetRng,
    /// Reused effect buffers: every dispatch borrows these, drains them,
    /// and hands them back, so the per-event path stops allocating fresh
    /// vectors once the run's high-water capacity is reached.
    scratch: Effects<M, O>,
    /// The protocol trace ring; disabled by default (recording is then a
    /// single branch — no allocation, no behavioral difference).
    tracer: Tracer,
    /// Virtual time of the most recent fault injection (node corruption
    /// or link garbage) — the stabilization probe's `τ_fault`.
    last_fault_at: Option<SimTime>,
    /// Next harness-side envelope id. Advances on every routed message
    /// regardless of tracing, touching neither the wire format nor the
    /// RNG streams, so enabling traces never perturbs schedules.
    next_env: u64,
}

impl<M: Message, O: 'static> Simulation<M, O> {
    /// Creates an empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let net_rng = DetRng::derive(cfg.seed, u64::MAX);
        let fault_rng = DetRng::derive(cfg.seed, u64::MAX - 1);
        Simulation {
            cfg,
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: Vec::new(),
            rngs: Vec::new(),
            links: Vec::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            outputs: Vec::new(),
            metrics: Metrics::default(),
            garbage_gen: None,
            net_rng,
            fault_rng,
            scratch: Effects::new(),
            tracer: Tracer::disabled(),
            last_fault_at: None,
            next_env: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered processes (including reserved-but-unfilled ids).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no processes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Run counters accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Enables protocol tracing into a bounded ring of `capacity` events.
    /// Tracing is off by default; enabling it changes no protocol
    /// behavior, message counts, or byte counts — only what is recorded.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Tracer::bounded(capacity);
    }

    /// The trace ring (empty and inert unless
    /// [`Simulation::enable_tracing`] was called). Export with
    /// [`Tracer::to_jsonl`] or [`Tracer::to_chrome_trace`].
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Virtual time of the most recent fault injection (scheduled node
    /// corruption or link garbage), if any — the reference point for
    /// stabilization-time measurements.
    pub fn last_fault_at(&self) -> Option<SimTime> {
        self.last_fault_at
    }

    /// Reserves the next [`ProcessId`] without providing a node yet, so that
    /// nodes with cyclic references to each other can be constructed.
    /// Fill it with [`Simulation::add_node_at`].
    pub fn reserve_id(&mut self) -> ProcessId {
        let id = ProcessId(self.nodes.len() as u32);
        self.nodes.push(None);
        self.rngs.push(DetRng::derive(self.cfg.seed, id.0 as u64));
        id
    }

    /// Registers `node`, assigns it the next id, and runs its
    /// [`Node::on_start`] handler at the current time.
    pub fn add_node(&mut self, node: impl Node<Msg = M, Out = O>) -> ProcessId {
        let id = self.reserve_id();
        self.add_node_at(id, node);
        id
    }

    /// Fills a previously [reserved](Simulation::reserve_id) id with `node`
    /// and runs its [`Node::on_start`].
    ///
    /// # Panics
    ///
    /// Panics if `id` was not reserved or is already filled.
    pub fn add_node_at(&mut self, id: ProcessId, node: impl Node<Msg = M, Out = O>) {
        let slot = self
            .nodes
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("{id} was never reserved"));
        assert!(slot.is_none(), "{id} is already occupied");
        *slot = Some(Box::new(node));
        self.dispatch(id, |node, ctx| node.on_start(ctx));
    }

    /// Replaces the node at `id` (e.g. a correct server turning Byzantine,
    /// or a mobile Byzantine fault moving on). The new node's
    /// [`Node::on_start`] runs at the current time. Returns the old node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or currently empty.
    pub fn replace_node(
        &mut self,
        id: ProcessId,
        node: impl Node<Msg = M, Out = O>,
    ) -> Box<dyn Node<Msg = M, Out = O>> {
        let slot = self
            .nodes
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("{id} was never reserved"));
        let old = slot.take().unwrap_or_else(|| panic!("{id} is empty"));
        *slot = Some(Box::new(node));
        self.dispatch(id, |node, ctx| node.on_start(ctx));
        old
    }

    /// Adds the directed link `from -> to` with the given delay model,
    /// replacing any existing link.
    pub fn add_link(&mut self, from: ProcessId, to: ProcessId, delay: DelayModel) {
        let (f, t) = (from.index(), to.index());
        if self.links.len() <= f {
            self.links.resize_with(f + 1, Vec::new);
        }
        let row = &mut self.links[f];
        if row.len() <= t {
            row.resize_with(t + 1, || None);
        }
        row[t] = Some(LinkState::new(delay));
    }

    /// The link `from -> to`, if registered.
    fn link(&self, from: ProcessId, to: ProcessId) -> Option<&LinkState> {
        self.links
            .get(from.index())
            .and_then(|row| row.get(to.index()))
            .and_then(Option::as_ref)
    }

    /// Mutable access to the link `from -> to`, if registered.
    fn link_mut(&mut self, from: ProcessId, to: ProcessId) -> Option<&mut LinkState> {
        self.links
            .get_mut(from.index())
            .and_then(|row| row.get_mut(to.index()))
            .and_then(Option::as_mut)
    }

    /// Adds both directed links between `a` and `b`.
    pub fn add_duplex(&mut self, a: ProcessId, b: ProcessId, delay: DelayModel) {
        self.add_link(a, b, delay.clone());
        self.add_link(b, a, delay);
    }

    /// Adds both directed links between `a` and `b` using the config's
    /// default delay model.
    pub fn add_duplex_default(&mut self, a: ProcessId, b: ProcessId) {
        self.add_duplex(a, b, self.cfg.default_delay.clone());
    }

    /// Swaps the delay model of the directed link `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if the link does not exist.
    pub fn set_link_delay(&mut self, from: ProcessId, to: ProcessId, delay: DelayModel) {
        self.link_mut(from, to)
            .unwrap_or_else(|| panic!("no link {from} -> {to}"))
            .set_delay(delay);
    }

    /// The known delay upper bound of the link `from -> to`, if any.
    pub fn link_bound(&self, from: ProcessId, to: ProcessId) -> Option<SimDuration> {
        self.link(from, to).and_then(|l| l.delay().upper_bound())
    }

    /// Installs the generator used by [`Simulation::schedule_link_garbage`]
    /// to fabricate arbitrary messages (modelling arbitrary initial link
    /// contents after a transient fault).
    pub fn set_garbage_gen(
        &mut self,
        gen: impl FnMut(&mut DetRng, ProcessId, ProcessId) -> M + 'static,
    ) {
        self.garbage_gen = Some(Box::new(gen));
    }

    /// Schedules a transient-fault corruption of `pid`'s local state at
    /// absolute time `at` (via [`Node::on_corrupt`]).
    pub fn schedule_corruption(&mut self, at: SimTime, pid: ProcessId) {
        self.push(at, EventKind::Corrupt { pid });
    }

    /// Schedules `count` garbage messages to be injected into the link
    /// `from -> to` at absolute time `at`. Requires a garbage generator
    /// (see [`Simulation::set_garbage_gen`]); injections without one are
    /// silently skipped.
    pub fn schedule_link_garbage(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        count: usize,
    ) {
        for _ in 0..count {
            self.push(at, EventKind::InjectGarbage { from, to });
        }
    }

    /// Immediately discards every message currently in flight on the link
    /// `from -> to` (transient fault wiping channel contents).
    pub fn wipe_link(&mut self, from: ProcessId, to: ProcessId) {
        if let Some(link) = self.link_mut(from, to) {
            link.bump_generation();
            self.last_fault_at = Some(self.now);
        }
    }

    /// Records an externally applied fault against `pid` (e.g. a
    /// harness-level data-store wipe): stamps
    /// [`Simulation::last_fault_at`] so stabilization-time measurement
    /// restarts here, and traces the injection. The node itself is not
    /// touched — the caller has already applied the fault.
    pub fn record_fault(&mut self, pid: ProcessId, what: &'static str) {
        self.last_fault_at = Some(self.now);
        self.tracer.record(
            self.now.as_nanos(),
            pid.0,
            TraceEvent::FaultInjected { what },
        );
    }

    /// Runs `f` against the concrete node `N` at `pid` with a live
    /// [`Context`], applying any effects it records. This is how the harness
    /// invokes client operations between events.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is unknown/empty or the node is not an `N`.
    pub fn with_node<N, R>(
        &mut self,
        pid: ProcessId,
        f: impl FnOnce(&mut N, &mut Context<'_, M, O>) -> R,
    ) -> R
    where
        N: Node<Msg = M, Out = O>,
    {
        self.dispatch(pid, |node, ctx| {
            let node = node
                .as_any_mut()
                .downcast_mut::<N>()
                .unwrap_or_else(|| panic!("{} is not a {}", ctx.me(), std::any::type_name::<N>()));
            f(node, ctx)
        })
    }

    /// Read-only access to the concrete node `N` at `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is unknown/empty or the node is not an `N`.
    pub fn node_ref<N, R>(&mut self, pid: ProcessId, f: impl FnOnce(&N) -> R) -> R
    where
        N: Node<Msg = M, Out = O>,
    {
        let node = self.nodes[pid.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("{pid} is empty"));
        let node = node
            .as_any_mut()
            .downcast_mut::<N>()
            .unwrap_or_else(|| panic!("{pid} is not a {}", std::any::type_name::<N>()));
        f(node)
    }

    /// The earliest pending event time, if any event is pending.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|s| s.at)
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    ///
    /// # Panics
    ///
    /// Panics if the configured `max_events` cap is exceeded (livelock
    /// tripwire).
    pub fn step(&mut self) -> bool {
        let Some(Scheduled { at, kind, .. }) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "event from the past");
        self.now = at;
        self.metrics.events_processed += 1;
        assert!(
            self.metrics.events_processed <= self.cfg.max_events,
            "max_events ({}) exceeded at {} — livelock?",
            self.cfg.max_events,
            self.now
        );
        match kind {
            EventKind::Deliver {
                from,
                to,
                msg,
                generation,
                env,
            } => {
                let live = self
                    .link(from, to)
                    .map(|l| l.generation() == generation)
                    .unwrap_or(false);
                if live {
                    self.metrics.messages_delivered += 1;
                    self.tracer.record(
                        self.now.as_nanos(),
                        to.0,
                        TraceEvent::MessageDelivered {
                            from: from.0,
                            to: to.0,
                            env,
                        },
                    );
                    self.dispatch(to, |node, ctx| node.on_message(from, msg, ctx));
                } else {
                    self.metrics.record_dropped(msg.wire_bytes(), msg.is_bulk());
                    self.tracer.record(
                        self.now.as_nanos(),
                        to.0,
                        TraceEvent::MessageDropped {
                            from: from.0,
                            to: to.0,
                        },
                    );
                }
            }
            EventKind::Timer { pid, id } => {
                if !self.cancelled.remove(&id) {
                    self.metrics.timers_fired += 1;
                    self.dispatch(pid, |node, ctx| node.on_timer(id, ctx));
                }
            }
            EventKind::Corrupt { pid } => {
                self.metrics.corruptions += 1;
                self.last_fault_at = Some(self.now);
                self.tracer.record(
                    self.now.as_nanos(),
                    pid.0,
                    TraceEvent::FaultInjected { what: "corruption" },
                );
                if let Some(node) = self.nodes[pid.index()].as_mut() {
                    node.on_corrupt(&mut self.fault_rng);
                }
            }
            EventKind::InjectGarbage { from, to } => {
                if let Some(mut gen) = self.garbage_gen.take() {
                    let msg = gen(&mut self.fault_rng, from, to);
                    self.garbage_gen = Some(gen);
                    self.metrics.garbage_injected += 1;
                    self.last_fault_at = Some(self.now);
                    self.tracer.record(
                        self.now.as_nanos(),
                        to.0,
                        TraceEvent::FaultInjected {
                            what: "link-garbage",
                        },
                    );
                    self.route(from, to, msg);
                }
            }
        }
        true
    }

    /// Processes all events up to and including time `t`, then advances the
    /// clock to `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(at) = self.peek_next_time() {
            if at > t {
                break;
            }
            self.step();
        }
        if self.now < t {
            self.now = t;
        }
    }

    /// Processes all events for the next `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Runs until no events remain or until the clock passes `limit`.
    /// Returns `true` if the event queue drained (quiescence).
    pub fn run_until_quiescent(&mut self, limit: SimTime) -> bool {
        loop {
            match self.peek_next_time() {
                None => return true,
                Some(at) if at > limit => return false,
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Drains the output events emitted since the last call, as
    /// `(time, emitting process, event)` triples in emission order.
    pub fn take_outputs(&mut self) -> Vec<(SimTime, ProcessId, O)> {
        std::mem::take(&mut self.outputs)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let at = if at < self.now { self.now } else { at };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
    }

    /// Routes one message over the link `from -> to`, enforcing FIFO.
    fn route(&mut self, from: ProcessId, to: ProcessId, msg: M) {
        // Field-level indexed access (not `link_mut`) so the link borrow
        // stays disjoint from `net_rng`.
        let link = self
            .links
            .get_mut(from.index())
            .and_then(|row| row.get_mut(to.index()))
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("send over missing link {from} -> {to}"));
        let at = link.schedule(self.now, &mut self.net_rng);
        let generation = link.generation();
        let env = self.next_env;
        self.next_env += 1;
        self.metrics
            .record_send(from, to, msg.label(), msg.wire_bytes(), msg.is_bulk());
        self.tracer.record(
            self.now.as_nanos(),
            from.0,
            TraceEvent::MessageSent {
                from: from.0,
                to: to.0,
                env,
                label: msg.label(),
            },
        );
        self.push(
            at,
            EventKind::Deliver {
                from,
                to,
                msg,
                generation,
                env,
            },
        );
    }

    fn dispatch<R>(
        &mut self,
        pid: ProcessId,
        f: impl FnOnce(&mut dyn Node<Msg = M, Out = O>, &mut Context<'_, M, O>) -> R,
    ) -> R {
        let mut node = self.nodes[pid.index()]
            .take()
            .unwrap_or_else(|| panic!("{pid} has no node (reserved but never filled?)"));
        // Dispatches never nest, so every handler records into the same
        // reusable buffers instead of allocating fresh ones per event.
        let mut effects = std::mem::take(&mut self.scratch);
        let result = {
            let mut ctx = Context::new(
                self.now,
                pid,
                &mut self.rngs[pid.index()],
                &mut self.next_timer,
                &mut effects,
            );
            ctx.tracing = self.tracer.is_enabled();
            f(node.as_mut(), &mut ctx)
        };
        self.nodes[pid.index()] = Some(node);
        self.apply_effects(pid, &mut effects);
        self.scratch = effects;
        result
    }

    /// Applies and drains `effects`, leaving its buffers empty but with
    /// their capacity intact (they are the dispatch scratch space).
    fn apply_effects(&mut self, pid: ProcessId, effects: &mut Effects<M, O>) {
        if effects.is_empty() {
            return;
        }
        for (to, msg) in effects.sends.drain(..) {
            self.route(pid, to, msg);
        }
        for (id, delay) in effects.timers_set.drain(..) {
            self.push(self.now + delay, EventKind::Timer { pid, id });
        }
        for id in effects.timers_cancelled.drain(..) {
            self.cancelled.insert(id);
        }
        for out in effects.outputs.drain(..) {
            self.outputs.push((self.now, pid, out));
        }
        if !effects.slow.is_zero() {
            self.metrics.slow_paths.fold(&effects.slow);
            effects.slow = crate::metrics::SlowPath::default();
        }
        for event in effects.trace.drain(..) {
            self.tracer.record(self.now.as_nanos(), pid.0, event);
        }
    }
}

impl<M: Message, O> std::fmt::Debug for Simulation<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field(
                "links",
                &self
                    .links
                    .iter()
                    .map(|row| row.iter().filter(|l| l.is_some()).count())
                    .sum::<usize>(),
            )
            .field("pending_events", &self.queue.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    #[derive(Clone, Debug, PartialEq)]
    enum TMsg {
        Ping(u32),
        Pong(u32),
    }
    impl Message for TMsg {
        fn label(&self) -> &'static str {
            match self {
                TMsg::Ping(_) => "PING",
                TMsg::Pong(_) => "PONG",
            }
        }
    }

    /// Echoes every Ping back as a Pong with the same payload.
    struct Echo;
    impl Node for Echo {
        type Msg = TMsg;
        type Out = u32;
        fn on_message(&mut self, from: ProcessId, msg: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
            if let TMsg::Ping(v) = msg {
                ctx.send(from, TMsg::Pong(v));
            }
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends pings on demand; outputs payloads of received pongs.
    struct Pinger {
        server: ProcessId,
        state: u64,
    }
    impl Pinger {
        fn ping(&mut self, v: u32, ctx: &mut Context<'_, TMsg, u32>) {
            ctx.send(self.server, TMsg::Ping(v));
        }
    }
    impl Node for Pinger {
        type Msg = TMsg;
        type Out = u32;
        fn on_message(&mut self, _from: ProcessId, msg: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
            if let TMsg::Pong(v) = msg {
                ctx.output(v);
            }
        }
        fn on_corrupt(&mut self, rng: &mut DetRng) {
            self.state = rng.next_u64();
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn pair(seed: u64) -> (Simulation<TMsg, u32>, ProcessId, ProcessId) {
        let mut sim = Simulation::new(SimConfig::with_seed(seed));
        let server = sim.add_node(Echo);
        let client = sim.add_node(Pinger { server, state: 0 });
        sim.add_duplex(
            client,
            server,
            DelayModel::Constant(SimDuration::micros(10)),
        );
        (sim, client, server)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, client, _) = pair(1);
        sim.with_node::<Pinger, _>(client, |n, ctx| n.ping(7, ctx));
        assert!(sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2)));
        let outs = sim.take_outputs();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].2, 7);
        // One ping + one pong.
        assert_eq!(sim.metrics().messages_sent, 2);
        assert_eq!(sim.metrics().sent_with_label("PING"), 1);
        assert_eq!(sim.metrics().sent_with_label("PONG"), 1);
        // Round trip = 2 constant 10us hops.
        assert_eq!(outs[0].0, SimTime::from_nanos(20_000));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed| {
            let (mut sim, client, _) = pair(seed);
            for v in 0..20 {
                sim.with_node::<Pinger, _>(client, |n, ctx| n.ping(v, ctx));
            }
            sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
            (
                sim.take_outputs()
                    .into_iter()
                    .map(|(t, _, v)| (t, v))
                    .collect::<Vec<_>>(),
                sim.metrics().messages_sent,
            )
        };
        assert_eq!(run(42), run(42));
        // And a different seed with random delays still yields same logical results.
        let (mut sim, client, server) = pair(43);
        sim.add_duplex(client, server, DelayModel::default_async());
        sim.with_node::<Pinger, _>(client, |n, ctx| n.ping(9, ctx));
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert_eq!(sim.take_outputs()[0].2, 9);
    }

    #[test]
    fn fifo_delivery_order_is_send_order() {
        let (mut sim, client, _) = pair(7);
        // Random delays would reorder without the FIFO frontier.
        sim.set_link_delay(
            client,
            sim.node_ids_for_test()[0],
            DelayModel::Uniform {
                lo: SimDuration::nanos(1),
                hi: SimDuration::millis(5),
            },
        );
        for v in 0..50 {
            sim.with_node::<Pinger, _>(client, |n, ctx| n.ping(v, ctx));
        }
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        let outs: Vec<u32> = sim.take_outputs().into_iter().map(|(_, _, v)| v).collect();
        assert_eq!(outs, (0..50).collect::<Vec<_>>());
    }

    impl Simulation<TMsg, u32> {
        fn node_ids_for_test(&self) -> Vec<ProcessId> {
            (0..self.nodes.len() as u32).map(ProcessId).collect()
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            fired: Vec<TimerId>,
        }
        impl Node for TimerNode {
            type Msg = TMsg;
            type Out = u32;
            fn on_start(&mut self, ctx: &mut Context<'_, TMsg, u32>) {
                let keep = ctx.set_timer(SimDuration::millis(1));
                let cancel = ctx.set_timer(SimDuration::millis(2));
                ctx.cancel_timer(cancel);
                let _ = keep;
            }
            fn on_message(&mut self, _: ProcessId, _: TMsg, _: &mut Context<'_, TMsg, u32>) {}
            fn on_timer(&mut self, id: TimerId, ctx: &mut Context<'_, TMsg, u32>) {
                self.fired.push(id);
                ctx.output(self.fired.len() as u32);
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<TMsg, u32> = Simulation::new(SimConfig::with_seed(5));
        let pid = sim.add_node(TimerNode { fired: vec![] });
        assert!(sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2)));
        assert_eq!(sim.metrics().timers_fired, 1);
        assert_eq!(sim.take_outputs().len(), 1);
        sim.node_ref::<TimerNode, _>(pid, |n| assert_eq!(n.fired.len(), 1));
    }

    #[test]
    fn corruption_calls_on_corrupt() {
        let (mut sim, client, _) = pair(11);
        sim.schedule_corruption(SimTime::from_nanos(100), client);
        sim.run_until(SimTime::from_nanos(200));
        assert_eq!(sim.metrics().corruptions, 1);
        sim.node_ref::<Pinger, _>(client, |n| assert_ne!(n.state, 0));
    }

    #[test]
    fn garbage_injection_delivers_fabricated_messages() {
        let (mut sim, client, server) = pair(13);
        sim.set_garbage_gen(|rng, _, _| TMsg::Pong(rng.next_u64() as u32));
        sim.schedule_link_garbage(SimTime::from_nanos(50), server, client, 3);
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert_eq!(sim.metrics().garbage_injected, 3);
        // The Pinger outputs each Pong payload it received.
        assert_eq!(sim.take_outputs().len(), 3);
    }

    #[test]
    fn wipe_link_drops_in_flight_messages() {
        let (mut sim, client, server) = pair(17);
        sim.with_node::<Pinger, _>(client, |n, ctx| n.ping(1, ctx));
        // The ping is in flight client->server; wipe that link.
        sim.wipe_link(client, server);
        sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
        assert_eq!(sim.metrics().messages_dropped, 1);
        // The wipe counts as the run's last transient fault.
        assert!(sim.last_fault_at().is_some());
        assert!(sim.take_outputs().is_empty());
    }

    #[test]
    fn handler_telemetry_reaches_tracer_and_metrics() {
        /// Echoes pings and reports one retransmit + one trace event each.
        struct NoisyEcho;
        impl Node for NoisyEcho {
            type Msg = TMsg;
            type Out = u32;
            fn on_message(&mut self, from: ProcessId, msg: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
                if let TMsg::Ping(v) = msg {
                    ctx.note_retransmit();
                    ctx.trace(sbs_obs::TraceEvent::Retransmit { shard: 0, round: v });
                    ctx.send(from, TMsg::Pong(v));
                }
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let build = |tracing: bool| {
            let mut sim: Simulation<TMsg, u32> = Simulation::new(SimConfig::with_seed(23));
            if tracing {
                sim.enable_tracing(64);
            }
            let server = sim.add_node(NoisyEcho);
            let client = sim.add_node(Pinger { server, state: 0 });
            sim.add_duplex(
                client,
                server,
                DelayModel::Constant(SimDuration::micros(10)),
            );
            sim.with_node::<Pinger, _>(client, |n, ctx| n.ping(5, ctx));
            sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
            sim
        };

        // Tracing off: slow-path counters still fold, no records held.
        let sim = build(false);
        assert_eq!(sim.metrics().slow_paths.retransmits, 1);
        assert!(sim.tracer().is_empty());

        // Tracing on: the handler event is stamped with time and pid.
        let sim = build(true);
        assert_eq!(sim.metrics().slow_paths.retransmits, 1);
        let recs: Vec<_> = sim
            .tracer()
            .records()
            .filter(|r| matches!(r.event, sbs_obs::TraceEvent::Retransmit { .. }))
            .collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].at_ns, 10_000); // one 10us hop
        assert_eq!(
            recs[0].event,
            sbs_obs::TraceEvent::Retransmit { shard: 0, round: 5 }
        );
    }

    #[test]
    fn replace_node_swaps_behavior() {
        struct Mute;
        impl Node for Mute {
            type Msg = TMsg;
            type Out = u32;
            fn on_message(&mut self, _: ProcessId, _: TMsg, _: &mut Context<'_, TMsg, u32>) {}
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let (mut sim, client, server) = pair(19);
        sim.replace_node(server, Mute);
        sim.with_node::<Pinger, _>(client, |n, ctx| n.ping(3, ctx));
        assert!(sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2)));
        assert!(sim.take_outputs().is_empty(), "mute server must not reply");
    }

    #[test]
    #[should_panic(expected = "missing link")]
    fn sending_without_a_link_panics() {
        let mut sim: Simulation<TMsg, u32> = Simulation::new(SimConfig::default());
        let a = sim.add_node(Echo);
        let b = sim.add_node(Pinger {
            server: a,
            state: 0,
        });
        // No links registered: this must panic loudly.
        sim.with_node::<Pinger, _>(b, |n, ctx| n.ping(1, ctx));
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn livelock_tripwire() {
        struct Storm {
            peer: ProcessId,
        }
        impl Node for Storm {
            type Msg = TMsg;
            type Out = u32;
            fn on_message(&mut self, from: ProcessId, _: TMsg, ctx: &mut Context<'_, TMsg, u32>) {
                ctx.send(from, TMsg::Ping(0));
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn on_start(&mut self, ctx: &mut Context<'_, TMsg, u32>) {
                ctx.send(self.peer, TMsg::Ping(0));
            }
        }
        let mut sim: Simulation<TMsg, u32> = Simulation::new(SimConfig {
            max_events: 1_000,
            ..SimConfig::default()
        });
        let a = sim.reserve_id();
        let b = sim.reserve_id();
        sim.add_duplex(a, b, DelayModel::Constant(SimDuration::nanos(1)));
        sim.add_node_at(a, Storm { peer: b });
        sim.add_node_at(b, Storm { peer: a });
        sim.run_until_quiescent(SimTime::MAX);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim: Simulation<TMsg, u32> = Simulation::new(SimConfig::default());
        sim.run_until(SimTime::from_nanos(1_000));
        assert_eq!(sim.now(), SimTime::from_nanos(1_000));
        sim.run_for(SimDuration::micros(1));
        assert_eq!(sim.now(), SimTime::from_nanos(2_000));
    }

    #[test]
    fn link_bound_reports_upper_bound() {
        let (sim, client, server) = pair(1);
        assert_eq!(
            sim.link_bound(client, server),
            Some(SimDuration::micros(10))
        );
        assert_eq!(sim.link_bound(server, ProcessId(99)), None);
    }
}
