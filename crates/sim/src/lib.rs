//! # sbs-sim — deterministic substrate for Byzantine message-passing protocols
//!
//! This crate is the execution substrate for the `stabilizing-storage`
//! workspace, which reproduces *"Stabilizing Server-Based Storage in
//! Byzantine Asynchronous Message-Passing Systems"* (Bonomi, Dolev,
//! Potop-Butucaru, Raynal — PODC 2015). The paper's computing model —
//! asynchronous sequential processes with zero processing time, connected by
//! reliable FIFO directed links with finite but arbitrary transfer delays,
//! subject to transient failures and Byzantine servers — is implemented here
//! as a deterministic discrete-event simulation, plus a thread-backed
//! runtime that hosts the very same protocol state machines.
//!
//! ## Pieces
//!
//! - [`Simulation`]: the discrete-event engine (virtual time, FIFO links,
//!   seeded determinism, fault injection).
//! - [`Node`] / [`Context`] / [`Effects`]: the runtime-agnostic protocol
//!   state-machine contract.
//! - [`DelayModel`] / [`LinkState`]: link behaviour, including the bounded
//!   delays required by the paper's synchronous variant.
//! - [`ThreadRuntime`]: the same contract on OS threads and crossbeam
//!   channels.
//! - [`DetRng`]: reproducible per-process randomness.
//! - [`Metrics`]: message/event/fault counters for the experiment harness.
//!
//! ## Example
//!
//! ```
//! use sbs_sim::{Context, Message, Node, ProcessId, SimConfig, SimTime, Simulation};
//! use std::any::Any;
//!
//! #[derive(Clone, Debug)]
//! struct Inc(u64);
//! impl Message for Inc {}
//!
//! /// Adds 1 to every number it receives and sends it back.
//! struct Adder;
//! impl Node for Adder {
//!     type Msg = Inc;
//!     type Out = u64;
//!     fn on_message(&mut self, from: ProcessId, Inc(v): Inc, ctx: &mut Context<'_, Inc, u64>) {
//!         ctx.send(from, Inc(v + 1));
//!     }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! /// Emits whatever comes back.
//! struct Probe;
//! impl Node for Probe {
//!     type Msg = Inc;
//!     type Out = u64;
//!     fn on_message(&mut self, _: ProcessId, Inc(v): Inc, ctx: &mut Context<'_, Inc, u64>) {
//!         ctx.output(v);
//!     }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut sim: Simulation<Inc, u64> = Simulation::new(SimConfig::with_seed(7));
//! let adder = sim.add_node(Adder);
//! let probe = sim.add_node(Probe);
//! sim.add_duplex_default(adder, probe);
//! sim.with_node::<Probe, _>(probe, |_probe, ctx| ctx.send(adder, Inc(41)));
//! sim.run_until_quiescent(SimTime::from_nanos(u64::MAX / 2));
//! let outputs = sim.take_outputs();
//! assert_eq!(outputs[0].2, 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod id;
mod link;
mod metrics;
mod node;
mod rng;
pub mod runtime;
mod sim;
mod time;

pub use id::{OpId, ProcessId, TimerId};
pub use link::{DelayModel, LinkState};
pub use metrics::{Metrics, SlowPath};
pub use node::{Context, Effects, Message, Node};
pub use rng::DetRng;
pub use runtime::{LocalTransport, MsgInjector, ThreadRuntime, Transport};
pub use sbs_obs::{
    causal_slice, ConsistencyMonitor, LatencyHistogram, LatencySummary, TraceEvent, TraceRecord,
    Tracer, Violation,
};
pub use sim::{SimConfig, Simulation};
pub use time::{SimDuration, SimTime};
