//! Point-to-point links: delay models and FIFO reliable delivery.
//!
//! The paper's basic model gives every reader/writer⇄server pair a directed
//! link that is *FIFO and reliable* (no loss, corruption, duplication or
//! creation), with unbounded but finite transfer delay. [`DelayModel`]
//! captures how long each transfer takes; [`LinkState`] enforces FIFO order
//! even when sampled delays would reorder messages, by never scheduling a
//! delivery before the previously scheduled one on the same link.
//!
//! The *synchronous* variant of the model (Appendix A) requires a known upper
//! bound on transfer delay; [`DelayModel::upper_bound`] exposes that bound so
//! clients can derive timeout values.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// How long a message transfer takes on a link.
#[derive(Clone, Debug, PartialEq)]
pub enum DelayModel {
    /// Every transfer takes exactly this long.
    Constant(SimDuration),
    /// Transfers take a uniformly random duration in `[lo, hi]`.
    Uniform {
        /// Minimum transfer delay.
        lo: SimDuration,
        /// Maximum transfer delay.
        hi: SimDuration,
    },
    /// Most transfers are `fast`, but with probability `slow_prob` a transfer
    /// takes `slow`. Useful for adversarial "one quorum lags" schedules.
    Bimodal {
        /// The common-case delay.
        fast: SimDuration,
        /// The tail delay.
        slow: SimDuration,
        /// Probability of hitting the tail.
        slow_prob: f64,
    },
}

impl DelayModel {
    /// A convenient default: uniform in `[100us, 1ms]`.
    pub fn default_async() -> Self {
        DelayModel::Uniform {
            lo: SimDuration::micros(100),
            hi: SimDuration::millis(1),
        }
    }

    /// Samples one transfer delay.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => {
                debug_assert!(lo <= hi, "uniform delay with lo > hi");
                SimDuration::nanos(rng.range_inclusive(lo.as_nanos(), hi.as_nanos()))
            }
            DelayModel::Bimodal {
                fast,
                slow,
                slow_prob,
            } => {
                if rng.chance(slow_prob) {
                    slow
                } else {
                    fast
                }
            }
        }
    }

    /// The known upper bound on transfer delay, if one exists.
    ///
    /// This is what makes a link *timely* in the sense of §3.3: synchronous
    /// protocols compute their timeouts from it. All built-in models are
    /// bounded; a future heavy-tailed model would return `None`.
    pub fn upper_bound(&self) -> Option<SimDuration> {
        match *self {
            DelayModel::Constant(d) => Some(d),
            DelayModel::Uniform { hi, .. } => Some(hi),
            DelayModel::Bimodal { fast, slow, .. } => Some(if slow > fast { slow } else { fast }),
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::default_async()
    }
}

/// Per-link bookkeeping: the delay model, the FIFO frontier, and the content
/// generation used to wipe in-flight messages on transient faults.
#[derive(Clone, Debug)]
pub struct LinkState {
    delay: DelayModel,
    /// The latest delivery instant already scheduled on this link. The next
    /// delivery is scheduled strictly after it, preserving FIFO order.
    last_scheduled: SimTime,
    /// Number of messages ever scheduled on this link.
    pub(crate) sent: u64,
    /// Bumped by [`LinkState::bump_generation`]; deliveries scheduled under
    /// an older generation are discarded, modelling a transient fault that
    /// replaced the channel's contents.
    generation: u64,
}

impl LinkState {
    /// Creates a link with the given delay model.
    pub fn new(delay: DelayModel) -> Self {
        LinkState {
            delay,
            last_scheduled: SimTime::ZERO,
            sent: 0,
            generation: 0,
        }
    }

    /// The current content generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Invalidates every message currently in flight on this link.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Replaces the delay model (takes effect for subsequent sends).
    pub fn set_delay(&mut self, delay: DelayModel) {
        self.delay = delay;
    }

    /// The current delay model.
    pub fn delay(&self) -> &DelayModel {
        &self.delay
    }

    /// Chooses the delivery instant for a message sent at `now`, enforcing
    /// FIFO: never before any previously scheduled delivery on this link.
    pub fn schedule(&mut self, now: SimTime, rng: &mut DetRng) -> SimTime {
        let raw = now + self.delay.sample(rng);
        let at = if raw <= self.last_scheduled {
            self.last_scheduled + SimDuration::nanos(1)
        } else {
            raw
        };
        self.last_scheduled = at;
        self.sent += 1;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_constant() {
        let mut rng = DetRng::from_seed(3);
        let m = DelayModel::Constant(SimDuration::micros(5));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::micros(5));
        }
        assert_eq!(m.upper_bound(), Some(SimDuration::micros(5)));
    }

    #[test]
    fn uniform_model_stays_in_range() {
        let mut rng = DetRng::from_seed(3);
        let lo = SimDuration::micros(10);
        let hi = SimDuration::micros(20);
        let m = DelayModel::Uniform { lo, hi };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d <= hi, "sample {d} outside [{lo}, {hi}]");
        }
        assert_eq!(m.upper_bound(), Some(hi));
    }

    #[test]
    fn bimodal_model_hits_both_modes() {
        let mut rng = DetRng::from_seed(3);
        let m = DelayModel::Bimodal {
            fast: SimDuration::micros(1),
            slow: SimDuration::millis(1),
            slow_prob: 0.5,
        };
        let mut fast = 0;
        let mut slow = 0;
        for _ in 0..200 {
            match m.sample(&mut rng) {
                d if d == SimDuration::micros(1) => fast += 1,
                d if d == SimDuration::millis(1) => slow += 1,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!(fast > 0 && slow > 0);
        assert_eq!(m.upper_bound(), Some(SimDuration::millis(1)));
    }

    #[test]
    fn link_preserves_fifo_despite_random_delays() {
        let mut rng = DetRng::from_seed(99);
        let mut link = LinkState::new(DelayModel::Uniform {
            lo: SimDuration::nanos(1),
            hi: SimDuration::millis(10),
        });
        let mut prev = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for _ in 0..500 {
            let at = link.schedule(now, &mut rng);
            assert!(at > prev, "FIFO violated: {at} <= {prev}");
            prev = at;
            // Messages sent in quick succession — the adversarial case.
            now += SimDuration::nanos(2);
        }
        assert_eq!(link.sent, 500);
    }

    #[test]
    fn delay_model_is_swappable_mid_run() {
        let mut rng = DetRng::from_seed(1);
        let mut link = LinkState::new(DelayModel::Constant(SimDuration::micros(1)));
        let t1 = link.schedule(SimTime::ZERO, &mut rng);
        assert_eq!(t1, SimTime::from_nanos(1_000));
        link.set_delay(DelayModel::Constant(SimDuration::millis(1)));
        let t2 = link.schedule(t1, &mut rng);
        assert_eq!(t2, t1 + SimDuration::millis(1));
        assert_eq!(link.delay(), &DelayModel::Constant(SimDuration::millis(1)));
    }
}
