//! Run-level counters: events, messages (total, per kind, per link), faults.
//!
//! Recording sits on the per-send hot path, so the breakdowns are kept in
//! flat structures: label counts in a tiny vector scanned linearly (a
//! handful of `'static` labels per protocol — cheaper than any tree or
//! hash lookup), per-link counts in a dense id-indexed matrix (process
//! ids are small dense integers; no hashing, no allocation per send).

use crate::id::ProcessId;

/// Slow-path counters: protocol events that mean an operation left the
/// fast path. Handlers report them through
/// [`Context`](crate::Context) note-methods (e.g.
/// [`Context::note_retransmit`](crate::Context::note_retransmit)); the
/// hosting runtime folds them into [`Metrics::slow_paths`].
///
/// All counters default to zero and are purely additive — they never
/// change message or byte accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlowPath {
    /// Re-sends after an ack/reply wait timed out (fetch re-rounds and
    /// bulk-push re-pushes).
    pub retransmits: u64,
    /// Fetch rounds declared dead (exhausted retries or too many bad
    /// replies to ever resolve).
    pub dead_fetch_rounds: u64,
    /// Erasure-coded reconstructions that gathered enough verified
    /// fragments but failed to decode to a valid shard map.
    pub reconstruction_fallbacks: u64,
    /// Reads that gave up on their fetched reference and re-read the
    /// metadata register from scratch.
    pub metadata_rereads: u64,
    /// Server-side guard refusals of wire requests that cannot be honest
    /// for the deployment (wrong shard/window/total, plane mismatch).
    pub guard_refusals: u64,
    /// Self-healing repair rounds: fan-outs of peer pulls issued by a
    /// data replica that detected a missing or corrupt entry it should
    /// hold (a wipe, an eviction race, a failed integrity re-check).
    pub repair_rounds: u64,
}

impl SlowPath {
    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SlowPath::default()
    }

    pub(crate) fn fold(&mut self, other: &SlowPath) {
        self.retransmits += other.retransmits;
        self.dead_fetch_rounds += other.dead_fetch_rounds;
        self.reconstruction_fallbacks += other.reconstruction_fallbacks;
        self.metadata_rereads += other.metadata_rereads;
        self.guard_refusals += other.guard_refusals;
        self.repair_rounds += other.repair_rounds;
    }
}

/// Counters accumulated over one simulation run.
///
/// Message counts are the raw number of point-to-point sends — a broadcast to
/// `n` servers counts `n`. [`Metrics::sent_with_label`] breaks the same
/// totals down by [`Message::label`](crate::Message::label).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Events popped from the scheduler (deliveries, timers, faults).
    pub events_processed: u64,
    /// Messages handed to links.
    pub messages_sent: u64,
    /// Messages delivered to a destination handler.
    pub messages_delivered: u64,
    /// Messages dropped because the link's content was wiped by a fault.
    pub messages_dropped: u64,
    /// Estimated bytes sent by **metadata-plane** messages (see
    /// [`Message::is_bulk`](crate::Message::is_bulk); messages whose type
    /// does not override `wire_bytes` contribute 0).
    pub metadata_bytes_sent: u64,
    /// Estimated bytes sent by **bulk data-plane** messages.
    pub bulk_bytes_sent: u64,
    /// Estimated metadata-plane bytes of messages counted in
    /// [`Metrics::messages_dropped`]: these bytes are *included* in
    /// [`Metrics::metadata_bytes_sent`] (the send happened) but never
    /// reached a handler — subtract them to compare delivered traffic
    /// across fault plans.
    pub metadata_bytes_dropped: u64,
    /// Estimated bulk-plane bytes of dropped messages (see
    /// [`Metrics::metadata_bytes_dropped`]).
    pub bulk_bytes_dropped: u64,
    /// Timers that actually fired (cancelled timers excluded).
    pub timers_fired: u64,
    /// Transient-fault corruptions applied to nodes.
    pub corruptions: u64,
    /// Garbage messages injected into links by the fault plan.
    pub garbage_injected: u64,
    /// Slow-path events reported by protocol handlers (see
    /// [`SlowPath`]); folded in when each handler's effects are applied.
    pub slow_paths: SlowPath,
    /// Sent-message counts per message label, in first-seen order.
    by_label: Vec<(&'static str, u64)>,
    /// Sent-message counts per directed link, dense: `per_link[from][to]`.
    per_link: Vec<Vec<u64>>,
}

impl Metrics {
    /// Records one send of a message with the given label, estimated wire
    /// size, and plane.
    pub(crate) fn record_send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        label: &'static str,
        bytes: u64,
        bulk: bool,
    ) {
        self.messages_sent += 1;
        if bulk {
            self.bulk_bytes_sent += bytes;
        } else {
            self.metadata_bytes_sent += bytes;
        }
        match self.by_label.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => self.by_label.push((label, 1)),
        }
        let (f, t) = (from.index(), to.index());
        if self.per_link.len() <= f {
            self.per_link.resize_with(f + 1, Vec::new);
        }
        let row = &mut self.per_link[f];
        if row.len() <= t {
            row.resize(t + 1, 0);
        }
        row[t] += 1;
    }

    /// Records one message dropped by a link wipe. The drop is decided at
    /// delivery time, long after [`Metrics::record_send`] already counted
    /// the bytes as sent — so dropped bytes are tracked in their own
    /// counters instead of mutating the send totals.
    pub(crate) fn record_dropped(&mut self, bytes: u64, bulk: bool) {
        self.messages_dropped += 1;
        if bulk {
            self.bulk_bytes_dropped += bytes;
        } else {
            self.metadata_bytes_dropped += bytes;
        }
    }

    /// Total estimated bytes sent across both planes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.metadata_bytes_sent + self.bulk_bytes_sent
    }

    /// Total estimated bytes of dropped (wiped-in-flight) messages across
    /// both planes. Always `≤` [`Metrics::total_bytes_sent`].
    pub fn total_bytes_dropped(&self) -> u64 {
        self.metadata_bytes_dropped + self.bulk_bytes_dropped
    }

    /// Total messages sent with `label`.
    pub fn sent_with_label(&self, label: &str) -> u64 {
        self.by_label
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Per-label send counts, in first-seen order.
    pub fn label_counts(&self) -> &[(&'static str, u64)] {
        &self.by_label
    }

    /// Messages sent on the directed link `from -> to`.
    pub fn sent_on_link(&self, from: ProcessId, to: ProcessId) -> u64 {
        self.per_link
            .get(from.index())
            .and_then(|row| row.get(to.index()))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_updates_all_views() {
        let mut m = Metrics::default();
        m.record_send(ProcessId(0), ProcessId(1), "WRITE", 100, false);
        m.record_send(ProcessId(0), ProcessId(2), "WRITE", 100, false);
        m.record_send(ProcessId(1), ProcessId(0), "ACK_WRITE", 1024, true);

        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.metadata_bytes_sent, 200);
        assert_eq!(m.bulk_bytes_sent, 1024);
        assert_eq!(m.total_bytes_sent(), 1224);
        assert_eq!(m.sent_with_label("WRITE"), 2);
        assert_eq!(m.sent_with_label("ACK_WRITE"), 1);
        assert_eq!(m.sent_with_label("NOPE"), 0);
        assert_eq!(m.label_counts(), &[("WRITE", 2), ("ACK_WRITE", 1)]);
        assert_eq!(m.sent_on_link(ProcessId(0), ProcessId(1)), 1);
        assert_eq!(m.sent_on_link(ProcessId(2), ProcessId(0)), 0);
        assert_eq!(m.sent_on_link(ProcessId(40), ProcessId(41)), 0);
    }

    #[test]
    fn dropped_bytes_are_tracked_separately_from_send_totals() {
        let mut m = Metrics::default();
        m.record_send(ProcessId(0), ProcessId(1), "WRITE", 100, false);
        m.record_send(ProcessId(0), ProcessId(1), "BULK_PUT", 1000, true);
        m.record_dropped(100, false);
        m.record_dropped(1000, true);
        // Send totals untouched: the bytes did go out on the wire.
        assert_eq!(m.metadata_bytes_sent, 100);
        assert_eq!(m.bulk_bytes_sent, 1000);
        // Dropped bytes land in their own per-plane counters.
        assert_eq!(m.messages_dropped, 2);
        assert_eq!(m.metadata_bytes_dropped, 100);
        assert_eq!(m.bulk_bytes_dropped, 1000);
        assert_eq!(m.total_bytes_dropped(), 1100);
    }

    #[test]
    fn slow_path_counters_fold_and_compare() {
        let mut a = SlowPath::default();
        assert!(a.is_zero());
        let b = SlowPath {
            retransmits: 1,
            dead_fetch_rounds: 2,
            reconstruction_fallbacks: 3,
            metadata_rereads: 4,
            guard_refusals: 5,
            repair_rounds: 6,
        };
        a.fold(&b);
        a.fold(&b);
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.guard_refusals, 10);
        assert_eq!(a.repair_rounds, 12);
        assert!(!a.is_zero());
    }
}
