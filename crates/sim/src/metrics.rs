//! Run-level counters: events, messages (total, per kind, per link), faults.
//!
//! Recording sits on the per-send hot path, so the breakdowns are kept in
//! flat structures: label counts in a tiny vector scanned linearly (a
//! handful of `'static` labels per protocol — cheaper than any tree or
//! hash lookup), per-link counts in a dense id-indexed matrix (process
//! ids are small dense integers; no hashing, no allocation per send).

use crate::id::ProcessId;

/// Counters accumulated over one simulation run.
///
/// Message counts are the raw number of point-to-point sends — a broadcast to
/// `n` servers counts `n`. [`Metrics::sent_with_label`] breaks the same
/// totals down by [`Message::label`](crate::Message::label).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Events popped from the scheduler (deliveries, timers, faults).
    pub events_processed: u64,
    /// Messages handed to links.
    pub messages_sent: u64,
    /// Messages delivered to a destination handler.
    pub messages_delivered: u64,
    /// Messages dropped because the link's content was wiped by a fault.
    pub messages_dropped: u64,
    /// Estimated bytes sent by **metadata-plane** messages (see
    /// [`Message::is_bulk`](crate::Message::is_bulk); messages whose type
    /// does not override `wire_bytes` contribute 0).
    pub metadata_bytes_sent: u64,
    /// Estimated bytes sent by **bulk data-plane** messages.
    pub bulk_bytes_sent: u64,
    /// Timers that actually fired (cancelled timers excluded).
    pub timers_fired: u64,
    /// Transient-fault corruptions applied to nodes.
    pub corruptions: u64,
    /// Garbage messages injected into links by the fault plan.
    pub garbage_injected: u64,
    /// Sent-message counts per message label, in first-seen order.
    by_label: Vec<(&'static str, u64)>,
    /// Sent-message counts per directed link, dense: `per_link[from][to]`.
    per_link: Vec<Vec<u64>>,
}

impl Metrics {
    /// Records one send of a message with the given label, estimated wire
    /// size, and plane.
    pub(crate) fn record_send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        label: &'static str,
        bytes: u64,
        bulk: bool,
    ) {
        self.messages_sent += 1;
        if bulk {
            self.bulk_bytes_sent += bytes;
        } else {
            self.metadata_bytes_sent += bytes;
        }
        match self.by_label.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => self.by_label.push((label, 1)),
        }
        let (f, t) = (from.index(), to.index());
        if self.per_link.len() <= f {
            self.per_link.resize_with(f + 1, Vec::new);
        }
        let row = &mut self.per_link[f];
        if row.len() <= t {
            row.resize(t + 1, 0);
        }
        row[t] += 1;
    }

    /// Total estimated bytes sent across both planes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.metadata_bytes_sent + self.bulk_bytes_sent
    }

    /// Total messages sent with `label`.
    pub fn sent_with_label(&self, label: &str) -> u64 {
        self.by_label
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// Per-label send counts, in first-seen order.
    pub fn label_counts(&self) -> &[(&'static str, u64)] {
        &self.by_label
    }

    /// Messages sent on the directed link `from -> to`.
    pub fn sent_on_link(&self, from: ProcessId, to: ProcessId) -> u64 {
        self.per_link
            .get(from.index())
            .and_then(|row| row.get(to.index()))
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_updates_all_views() {
        let mut m = Metrics::default();
        m.record_send(ProcessId(0), ProcessId(1), "WRITE", 100, false);
        m.record_send(ProcessId(0), ProcessId(2), "WRITE", 100, false);
        m.record_send(ProcessId(1), ProcessId(0), "ACK_WRITE", 1024, true);

        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.metadata_bytes_sent, 200);
        assert_eq!(m.bulk_bytes_sent, 1024);
        assert_eq!(m.total_bytes_sent(), 1224);
        assert_eq!(m.sent_with_label("WRITE"), 2);
        assert_eq!(m.sent_with_label("ACK_WRITE"), 1);
        assert_eq!(m.sent_with_label("NOPE"), 0);
        assert_eq!(m.label_counts(), &[("WRITE", 2), ("ACK_WRITE", 1)]);
        assert_eq!(m.sent_on_link(ProcessId(0), ProcessId(1)), 1);
        assert_eq!(m.sent_on_link(ProcessId(2), ProcessId(0)), 0);
        assert_eq!(m.sent_on_link(ProcessId(40), ProcessId(41)), 0);
    }
}
