//! Run-level counters: events, messages (total, per kind, per link), faults.

use std::collections::{BTreeMap, HashMap};

use crate::id::ProcessId;

/// Counters accumulated over one simulation run.
///
/// Message counts are the raw number of point-to-point sends — a broadcast to
/// `n` servers counts `n`. `by_label` breaks the same totals down by
/// [`Message::label`](crate::Message::label).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Events popped from the scheduler (deliveries, timers, faults).
    pub events_processed: u64,
    /// Messages handed to links.
    pub messages_sent: u64,
    /// Messages delivered to a destination handler.
    pub messages_delivered: u64,
    /// Messages dropped because the link's content was wiped by a fault.
    pub messages_dropped: u64,
    /// Sent-message counts per message label.
    pub by_label: BTreeMap<&'static str, u64>,
    /// Sent-message counts per directed link.
    pub per_link: HashMap<(ProcessId, ProcessId), u64>,
    /// Estimated bytes sent by **metadata-plane** messages (see
    /// [`Message::is_bulk`](crate::Message::is_bulk); messages whose type
    /// does not override `wire_bytes` contribute 0).
    pub metadata_bytes_sent: u64,
    /// Estimated bytes sent by **bulk data-plane** messages.
    pub bulk_bytes_sent: u64,
    /// Timers that actually fired (cancelled timers excluded).
    pub timers_fired: u64,
    /// Transient-fault corruptions applied to nodes.
    pub corruptions: u64,
    /// Garbage messages injected into links by the fault plan.
    pub garbage_injected: u64,
}

impl Metrics {
    /// Records one send of a message with the given label, estimated wire
    /// size, and plane.
    pub(crate) fn record_send(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        label: &'static str,
        bytes: u64,
        bulk: bool,
    ) {
        self.messages_sent += 1;
        if bulk {
            self.bulk_bytes_sent += bytes;
        } else {
            self.metadata_bytes_sent += bytes;
        }
        *self.by_label.entry(label).or_insert(0) += 1;
        *self.per_link.entry((from, to)).or_insert(0) += 1;
    }

    /// Total estimated bytes sent across both planes.
    pub fn total_bytes_sent(&self) -> u64 {
        self.metadata_bytes_sent + self.bulk_bytes_sent
    }

    /// Total messages sent with `label`.
    pub fn sent_with_label(&self, label: &str) -> u64 {
        self.by_label.get(label).copied().unwrap_or(0)
    }

    /// Messages sent on the directed link `from -> to`.
    pub fn sent_on_link(&self, from: ProcessId, to: ProcessId) -> u64 {
        self.per_link.get(&(from, to)).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_updates_all_views() {
        let mut m = Metrics::default();
        m.record_send(ProcessId(0), ProcessId(1), "WRITE", 100, false);
        m.record_send(ProcessId(0), ProcessId(2), "WRITE", 100, false);
        m.record_send(ProcessId(1), ProcessId(0), "ACK_WRITE", 1024, true);

        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.metadata_bytes_sent, 200);
        assert_eq!(m.bulk_bytes_sent, 1024);
        assert_eq!(m.total_bytes_sent(), 1224);
        assert_eq!(m.sent_with_label("WRITE"), 2);
        assert_eq!(m.sent_with_label("ACK_WRITE"), 1);
        assert_eq!(m.sent_with_label("NOPE"), 0);
        assert_eq!(m.sent_on_link(ProcessId(0), ProcessId(1)), 1);
        assert_eq!(m.sent_on_link(ProcessId(2), ProcessId(0)), 0);
    }
}
