//! Deterministic randomness.
//!
//! Every run of the simulator is reproducible from a single `u64` seed. Each
//! process receives its own [`DetRng`] derived from the master seed and its
//! [`ProcessId`](crate::ProcessId), so adding a process or reordering handler
//! executions does not perturb the random streams of unrelated processes.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator owned by one process (or by the
/// fault injector).
///
/// ```
/// use sbs_sim::DetRng;
/// let mut a = DetRng::from_seed(42);
/// let mut b = DetRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator directly from a seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent per-stream generator from a master seed and a
    /// stream index (e.g. a process id). Uses SplitMix64-style mixing so
    /// adjacent indices produce unrelated streams.
    pub fn derive(master: u64, stream: u64) -> Self {
        let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::from_seed(z)
    }

    /// A uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniformly random integer in `[lo, hi]` (inclusive on both ends).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        self.inner.gen_range(lo..=hi)
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }

    /// Mutable access to the underlying `RngCore` for interop with `rand`
    /// distributions.
    pub fn as_rng_core(&mut self) -> &mut dyn RngCore {
        &mut self.inner
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = DetRng::derive(7, 0);
        let mut b = DetRng::derive(7, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent streams should not collide");
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = DetRng::from_seed(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            match r.range_inclusive(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                1 | 2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::from_seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn pick_handles_empty_and_singleton() {
        let mut r = DetRng::from_seed(1);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
        assert_eq!(r.pick(&[42u8]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_inclusive_rejects_inverted_bounds() {
        let mut r = DetRng::from_seed(1);
        r.range_inclusive(5, 1);
    }
}
