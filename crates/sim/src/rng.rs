//! Deterministic randomness.
//!
//! Every run of the simulator is reproducible from a single `u64` seed. Each
//! process receives its own [`DetRng`] derived from the master seed and its
//! [`ProcessId`](crate::ProcessId), so adding a process or reordering handler
//! executions does not perturb the random streams of unrelated processes.
//!
//! The generator is a self-contained xoshiro256++ (Blackman–Vigna), with its
//! state expanded from the seed by SplitMix64 — no external crates, so the
//! whole workspace builds offline and the streams are stable across
//! toolchains.

/// SplitMix64 step: mixes `state` forward and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random number generator owned by one process (or by the
/// fault injector).
///
/// ```
/// use sbs_sim::DetRng;
/// let mut a = DetRng::from_seed(42);
/// let mut b = DetRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator directly from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 expansion guarantees a non-zero xoshiro state for
        // every seed (all-zero would be a fixed point).
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent per-stream generator from a master seed and a
    /// stream index (e.g. a process id). Uses SplitMix64-style mixing so
    /// adjacent indices produce unrelated streams.
    pub fn derive(master: u64, stream: u64) -> Self {
        let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::from_seed(z)
    }

    /// A uniformly random `u64` (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random integer in `[lo, hi]` (inclusive on both ends).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = (hi - lo) as u128 + 1;
        if span > u64::MAX as u128 {
            return self.next_u64(); // the full u64 range
        }
        // Lemire's multiply-shift map onto [0, span); the ~2^-64 bias is
        // far below anything the experiments can observe.
        lo + ((self.next_u64() as u128 * span) >> 64) as u64
    }

    /// A Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.range_inclusive(0, slice.len() as u64 - 1) as usize;
            Some(&slice[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ() {
        let mut a = DetRng::derive(7, 0);
        let mut b = DetRng::derive(7, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent streams should not collide");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = DetRng::from_seed(0);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = DetRng::from_seed(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            match r.range_inclusive(0, 3) {
                0 => seen_lo = true,
                3 => seen_hi = true,
                1 | 2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn range_inclusive_full_span_and_singleton() {
        let mut r = DetRng::from_seed(2);
        assert_eq!(r.range_inclusive(9, 9), 9);
        let _ = r.range_inclusive(0, u64::MAX); // must not overflow
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::from_seed(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = DetRng::from_seed(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut r = DetRng::from_seed(13);
        for _ in 0..1_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn pick_handles_empty_and_singleton() {
        let mut r = DetRng::from_seed(1);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
        assert_eq!(r.pick(&[42u8]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_inclusive_rejects_inverted_bounds() {
        let mut r = DetRng::from_seed(1);
        r.range_inclusive(5, 1);
    }
}
