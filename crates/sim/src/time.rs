//! Virtual time for the discrete-event simulator.
//!
//! The simulator measures time in nanoseconds from the start of the run.
//! Two newtypes keep instants and durations apart: [`SimTime`] is a point on
//! the virtual timeline, [`SimDuration`] is a span. Only the operations that
//! make dimensional sense are provided (`time + duration`, `time - time`,
//! `duration * scalar`, ...).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulator's virtual timeline, in nanoseconds since the
/// start of the run.
///
/// ```
/// use sbs_sim::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use sbs_sim::SimDuration;
/// assert_eq!(SimDuration::micros(2) * 3, SimDuration::nanos(6_000));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" / "no deadline".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration (never wraps past [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from raw nanoseconds.
    pub const fn nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a span from milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a span from seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (truncated) microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// This span expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_nanos(self.0))
    }
}

fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_nanos(500);
        let t1 = t0 + SimDuration::micros(2);
        assert_eq!(t1.as_nanos(), 2_500);
        assert_eq!(t1 - t0, SimDuration::micros(2));
    }

    #[test]
    fn duration_constructors_scale() {
        assert_eq!(SimDuration::secs(1), SimDuration::millis(1_000));
        assert_eq!(SimDuration::millis(1), SimDuration::micros(1_000));
        assert_eq!(SimDuration::micros(1), SimDuration::nanos(1_000));
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::millis(10);
        assert_eq!(d * 3, SimDuration::millis(30));
        assert_eq!(d / 2, SimDuration::millis(5));
        assert_eq!(d + d, SimDuration::millis(20));
        assert_eq!(d - SimDuration::millis(4), SimDuration::millis(6));
    }

    #[test]
    fn subtraction_saturates_for_durations() {
        assert_eq!(
            SimDuration::millis(1) - SimDuration::millis(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn saturating_add_clamps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(format!("{}", SimDuration::nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::secs(4)), "4.000s");
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "t=1.500us");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::nanos(1) < SimDuration::micros(1));
    }
}
