//! The protocol state-machine contract.
//!
//! A protocol participant is a [`Node`]: a state machine with zero-time
//! handlers, matching the paper's model where "processing times are
//! negligible ... only message transfers take time". Handlers never block;
//! they record *effects* (sends, timers, outputs) into a [`Context`], which
//! the hosting runtime — the discrete-event [`Simulation`](crate::Simulation)
//! or the thread-backed [`ThreadRuntime`](crate::runtime::ThreadRuntime) —
//! then applies.
//!
//! The same `Node` implementation runs unmodified under both runtimes.

use std::any::Any;

use crate::id::{ProcessId, TimerId};
use crate::metrics::SlowPath;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use sbs_obs::TraceEvent;

/// Messages exchanged between nodes.
///
/// The `label` is used by the metrics layer to break message counts down by
/// kind (e.g. `"WRITE"`, `"ACK_READ"`); it defaults to `"msg"`.
pub trait Message: Clone + std::fmt::Debug + 'static {
    /// A short, static name for this message's kind.
    fn label(&self) -> &'static str {
        "msg"
    }

    /// Estimated serialized size of this message on the wire, in bytes.
    /// The metrics layer accumulates it per plane (see
    /// [`Message::is_bulk`]) so byte savings — e.g. of metadata/data
    /// separation — are measurable. The default `0` means "unmeasured";
    /// message types that want byte accounting override it.
    fn wire_bytes(&self) -> u64 {
        0
    }

    /// True if this message travels on the **bulk data plane** (payload
    /// bytes between clients and data replicas) rather than the metadata
    /// plane. The metrics layer splits byte counts on this flag.
    fn is_bulk(&self) -> bool {
        false
    }
}

/// One protocol participant: a deterministic state machine driven by
/// messages and timers.
///
/// Implementations must also provide [`Node::as_any_mut`] (always the
/// one-liner `fn as_any_mut(&mut self) -> &mut dyn Any { self }`) so the
/// harness can recover the concrete type to invoke client operations.
pub trait Node: Any {
    /// The message type shared by every node in one simulation.
    type Msg: Message;
    /// The output event type (operation completions etc.) shared by every
    /// node in one simulation.
    type Out: 'static;

    /// Called once when the node is registered, before any message arrives.
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg, Self::Out>) {}

    /// Called when a message from `from` is delivered to this node.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Out>,
    );

    /// Called when a timer previously set through
    /// [`Context::set_timer`] fires. Cancelled timers never fire.
    fn on_timer(&mut self, _timer: TimerId, _ctx: &mut Context<'_, Self::Msg, Self::Out>) {}

    /// Transient-failure hook: arbitrarily corrupt this node's local state.
    ///
    /// The fault injector calls this to model the paper's "local variables of
    /// any process can be arbitrarily modified". Implementations should
    /// overwrite *every* protocol variable with adversarially random
    /// contents; the default does nothing (a node with no corruptible state).
    fn on_corrupt(&mut self, _rng: &mut DetRng) {}

    /// Type-recovery escape hatch; always implemented as `{ self }`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Effects recorded by a node handler, applied by the runtime after the
/// handler returns.
#[derive(Debug)]
pub struct Effects<M, O> {
    pub(crate) sends: Vec<(ProcessId, M)>,
    pub(crate) timers_set: Vec<(TimerId, SimDuration)>,
    pub(crate) timers_cancelled: Vec<TimerId>,
    pub(crate) outputs: Vec<O>,
    pub(crate) slow: SlowPath,
    pub(crate) trace: Vec<TraceEvent>,
}

impl<M, O> Effects<M, O> {
    /// Creates an empty effect buffer. Needed when driving a node (or an
    /// embedded protocol core) manually, outside a runtime.
    pub fn new() -> Self {
        Effects {
            sends: Vec::new(),
            timers_set: Vec::new(),
            timers_cancelled: Vec::new(),
            outputs: Vec::new(),
            slow: SlowPath::default(),
            trace: Vec::new(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.timers_set.is_empty()
            && self.timers_cancelled.is_empty()
            && self.outputs.is_empty()
            && self.slow.is_zero()
            && self.trace.is_empty()
    }

    /// Slow-path counters recorded so far (see
    /// [`SlowPath`]). Useful when driving a node manually in tests.
    pub fn slow_paths(&self) -> &SlowPath {
        &self.slow
    }

    /// Trace events recorded so far (only populated when the hosting
    /// runtime enabled tracing).
    pub fn trace_events(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The messages queued so far, as `(destination, message)` pairs in
    /// emission order. Useful for unit-testing nodes outside a runtime.
    pub fn sends(&self) -> &[(ProcessId, M)] {
        &self.sends
    }

    /// The output events queued so far, in emission order.
    pub fn outputs(&self) -> &[O] {
        &self.outputs
    }

    /// The timers armed so far, as `(id, delay)` pairs.
    pub fn timers_set(&self) -> &[(TimerId, SimDuration)] {
        &self.timers_set
    }

    /// Decomposes the buffer into `(sends, timers set, timers cancelled,
    /// outputs)`, each in emission order. Multiplexing wrappers use this to
    /// translate the effects of an embedded state machine — run under
    /// [`Context::with_effects`] — into their own wire/output types.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<(ProcessId, M)>,
        Vec<(TimerId, SimDuration)>,
        Vec<TimerId>,
        Vec<O>,
    ) {
        (
            self.sends,
            self.timers_set,
            self.timers_cancelled,
            self.outputs,
        )
    }
}

impl<M, O> Default for Effects<M, O> {
    fn default() -> Self {
        Effects::new()
    }
}

/// The handler-side view of the runtime: the current time, this node's
/// identity, a deterministic RNG, and the effect buffers.
pub struct Context<'a, M, O> {
    pub(crate) now: SimTime,
    pub(crate) me: ProcessId,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) effects: &'a mut Effects<M, O>,
    /// True when the hosting runtime has tracing enabled; [`Context::trace`]
    /// is a no-op otherwise (no hot-path allocation with tracing off).
    pub(crate) tracing: bool,
}

impl<M, O> std::fmt::Debug for Context<'_, M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("me", &self.me)
            .finish_non_exhaustive()
    }
}

impl<'a, M, O> Context<'a, M, O> {
    /// Builds a context. Exposed for runtimes and tests that drive nodes
    /// directly; protocol code only ever *receives* a context.
    pub fn new(
        now: SimTime,
        me: ProcessId,
        rng: &'a mut DetRng,
        next_timer: &'a mut u64,
        effects: &'a mut Effects<M, O>,
    ) -> Self {
        Context {
            now,
            me,
            rng,
            next_timer,
            effects,
            tracing: false,
        }
    }

    /// The current virtual (or wall-clock-mapped) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's own id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Queues `msg` for delivery to `to` over the (FIFO, reliable) link
    /// `self.me() -> to`.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.effects.sends.push((to, msg));
    }

    /// Queues `msg` to every process in `targets`.
    pub fn send_all<I>(&mut self, targets: I, msg: M)
    where
        I: IntoIterator<Item = ProcessId>,
        M: Clone,
    {
        for to in targets {
            self.effects.sends.push((to, msg.clone()));
        }
    }

    /// Arms a one-shot timer that fires after `delay`; returns its id.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.timers_set.push((id, delay));
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// unknown timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.timers_cancelled.push(id);
    }

    /// Emits an output event (e.g. an operation completion) to the harness.
    pub fn output(&mut self, out: O) {
        self.effects.outputs.push(out);
    }

    /// True if the hosting runtime is recording a protocol trace. Use to
    /// skip work whose only purpose is building a trace event.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Records a protocol trace event, attributed to this node at the
    /// current time. A no-op unless the hosting runtime enabled tracing —
    /// with tracing off this is one branch, no allocation.
    pub fn trace(&mut self, event: TraceEvent) {
        if self.tracing {
            self.effects.trace.push(event);
        }
    }

    /// Counts a slow-path retransmission (see
    /// [`SlowPath::retransmits`]).
    pub fn note_retransmit(&mut self) {
        self.effects.slow.retransmits += 1;
    }

    /// Counts a fetch round declared dead (see
    /// [`SlowPath::dead_fetch_rounds`]).
    pub fn note_dead_fetch_round(&mut self) {
        self.effects.slow.dead_fetch_rounds += 1;
    }

    /// Counts a failed erasure-coded reconstruction (see
    /// [`SlowPath::reconstruction_fallbacks`]).
    pub fn note_reconstruction_fallback(&mut self) {
        self.effects.slow.reconstruction_fallbacks += 1;
    }

    /// Counts a fallback metadata re-read (see
    /// [`SlowPath::metadata_rereads`]).
    pub fn note_metadata_reread(&mut self) {
        self.effects.slow.metadata_rereads += 1;
    }

    /// Counts a server-side guard refusal (see
    /// [`SlowPath::guard_refusals`]).
    pub fn note_guard_refusal(&mut self) {
        self.effects.slow.guard_refusals += 1;
    }

    /// Counts a self-healing repair round (see
    /// [`SlowPath::repair_rounds`]): one fan-out of peer pulls for a
    /// digest this replica should hold but found missing or corrupt.
    pub fn note_repair_round(&mut self) {
        self.effects.slow.repair_rounds += 1;
    }

    /// Runs `f` with a sub-context that shares this context's time,
    /// identity, RNG, and timer counter, but records effects — possibly of
    /// *different* message/output types — into `effects`.
    ///
    /// This is the embedding hook for multiplexing wrappers (see
    /// `sbs-store`): an inner state machine speaks its own wire type; the
    /// wrapper collects its effects here, then re-emits them translated
    /// (e.g. batched into an envelope). Because the timer counter is
    /// shared, timer ids allocated by the sub-context stay unique and can be
    /// re-armed verbatim with [`Context::forward_timer`].
    pub fn with_effects<M2, O2, R>(
        &mut self,
        effects: &mut Effects<M2, O2>,
        f: impl FnOnce(&mut Context<'_, M2, O2>) -> R,
    ) -> R {
        let r = {
            let mut sub = Context::new(self.now, self.me, self.rng, self.next_timer, effects);
            sub.tracing = self.tracing;
            f(&mut sub)
        };
        // Telemetry recorded inside the embedded machine belongs to this
        // handler execution: fold it up so the runtime sees it even though
        // the wrapper translates (and may drop parts of) the sub-effects.
        if !effects.slow.is_zero() {
            self.effects.slow.fold(&effects.slow);
            effects.slow = SlowPath::default();
        }
        self.effects.trace.append(&mut effects.trace);
        r
    }

    /// Arms a timer under an id already allocated by a sub-context sharing
    /// this context's timer counter (see [`Context::with_effects`]). The
    /// node's `on_timer` will observe exactly `id`.
    pub fn forward_timer(&mut self, id: TimerId, delay: SimDuration) {
        self.effects.timers_set.push((id, delay));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u32);
    impl Message for Ping {
        fn label(&self) -> &'static str {
            "PING"
        }
    }

    #[test]
    fn context_records_effects_in_order() {
        let mut rng = DetRng::from_seed(0);
        let mut next_timer = 0u64;
        let mut effects: Effects<Ping, &'static str> = Effects::new();
        let mut ctx = Context::new(
            SimTime::from_nanos(5),
            ProcessId(1),
            &mut rng,
            &mut next_timer,
            &mut effects,
        );

        assert_eq!(ctx.now(), SimTime::from_nanos(5));
        assert_eq!(ctx.me(), ProcessId(1));

        ctx.send(ProcessId(2), Ping(10));
        ctx.send_all([ProcessId(3), ProcessId(4)], Ping(11));
        let t = ctx.set_timer(SimDuration::millis(1));
        ctx.cancel_timer(t);
        ctx.output("done");

        assert_eq!(
            effects.sends,
            vec![
                (ProcessId(2), Ping(10)),
                (ProcessId(3), Ping(11)),
                (ProcessId(4), Ping(11)),
            ]
        );
        assert_eq!(
            effects.timers_set,
            vec![(TimerId(0), SimDuration::millis(1))]
        );
        assert_eq!(effects.timers_cancelled, vec![TimerId(0)]);
        assert_eq!(effects.outputs, vec!["done"]);
        assert_eq!(next_timer, 1);
    }

    #[test]
    fn timer_ids_are_unique_across_contexts() {
        let mut rng = DetRng::from_seed(0);
        let mut next_timer = 0u64;
        let mut e1: Effects<Ping, ()> = Effects::new();
        let t1 = Context::new(
            SimTime::ZERO,
            ProcessId(0),
            &mut rng,
            &mut next_timer,
            &mut e1,
        )
        .set_timer(SimDuration::nanos(1));
        let mut e2: Effects<Ping, ()> = Effects::new();
        let t2 = Context::new(
            SimTime::ZERO,
            ProcessId(0),
            &mut rng,
            &mut next_timer,
            &mut e2,
        )
        .set_timer(SimDuration::nanos(1));
        assert_ne!(t1, t2);
    }

    #[test]
    fn effects_emptiness() {
        let mut e: Effects<Ping, ()> = Effects::new();
        assert!(e.is_empty());
        e.sends.push((ProcessId(0), Ping(0)));
        assert!(!e.is_empty());
    }

    #[test]
    fn message_label_default_and_custom() {
        #[derive(Clone, Debug)]
        struct Plain;
        impl Message for Plain {}
        assert_eq!(Plain.label(), "msg");
        assert_eq!(Ping(0).label(), "PING");
    }
}
