//! Identifiers used throughout the simulator: processes, timers, operations.

use std::fmt;

/// Identifies one process (writer, reader, server, ...) inside a simulation
/// or runtime. Assigned densely from zero in registration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// The dense index of this process (usable for `Vec` indexing).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// Identifies a pending timer. Timer ids are unique across the whole run,
/// so a stale (already-fired or cancelled) id can never alias a new timer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// Identifies one client-level operation (a `write` or a `read` invocation).
/// Allocated by whoever drives operations (normally the scenario harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display_and_index() {
        let p = ProcessId(7);
        assert_eq!(format!("{p}"), "p7");
        assert_eq!(p.index(), 7);
        assert_eq!(ProcessId::from(7u32), p);
    }

    #[test]
    fn ids_order_numerically() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(TimerId(1) < TimerId(2));
        assert!(OpId(1) < OpId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", TimerId(3)), "timer#3");
        assert_eq!(format!("{}", OpId(9)), "op#9");
    }
}
