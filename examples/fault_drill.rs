//! Fault drill: corrupt every process and every link, then watch the
//! register stabilize at the first post-fault write — the paper's
//! headline property (Theorem 1 / Theorem 3).
//!
//! ```sh
//! cargo run --example fault_drill
//! ```

use stabilizing_storage::check::{atomic_stabilization_point, check_regularity};
use stabilizing_storage::core::harness::SwsrBuilder;
use stabilizing_storage::core::ByzStrategy;
use stabilizing_storage::sim::SimDuration;

fn main() {
    let mut register = SwsrBuilder::new(9, 1)
        .seed(7)
        .byzantine(0, ByzStrategy::RandomGarbage)
        .build_atomic(0u64);

    // Phase 1: healthy operation.
    println!("phase 1: healthy writes/reads");
    for v in 1..=3u64 {
        register.write(v);
        register.read();
        register.settle();
    }

    // Phase 2: transient catastrophe. Every server and both clients have
    // their local variables overwritten with garbage; links are polluted.
    println!("phase 2: transient fault hits every process and link");
    register.corrupt_all_servers();
    register.corrupt_clients();
    register.pollute_links(3);
    register.run_for(SimDuration::millis(10));

    // A read issued now may return garbage — and per Lemma 2 it may not
    // even terminate until the writer writes again.
    register.read();
    register.run_for(SimDuration::millis(20));
    println!(
        "  read invoked during havoc: {} (still pending: {})",
        if register.pending_ops() > 0 {
            "blocked — needs the first post-fault write"
        } else {
            "completed (possibly with garbage)"
        },
        register.pending_ops()
    );

    // Phase 3: the first post-fault write (τ1w) triggers stabilization.
    println!("phase 3: first post-fault write stabilizes the register");
    register.write(100);
    assert!(register.settle());
    for v in 101..=105u64 {
        register.read();
        register.write(v);
        register.settle();
    }

    let history = register.history();
    let reg_report = check_regularity(&history, &[0]);
    println!(
        "regularity violations over the whole run: {} (expected >0: the havoc reads)",
        reg_report.violations.len()
    );
    match atomic_stabilization_point(&history).expect("checkable") {
        Some(t) => println!("measured atomic stabilization point: {t}"),
        None => println!("history never stabilized (unexpected!)"),
    }
    match reg_report.first_clean_from {
        Some(t) => println!("measured regular stabilization point: {t}"),
        None => println!("no clean suffix (unexpected!)"),
    }
}
