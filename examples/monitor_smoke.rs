//! CI monitor smoke: run the faulted YCSB-B workload with tracing and
//! the online atomicity monitor enabled, print the health snapshot, and
//! fail — dumping the flight recorder — if the monitor flags anything.
//!
//! ```sh
//! cargo run --release --example monitor_smoke
//! ```
//!
//! On a violation the causal slice lands in `FLIGHT_monitor_smoke.jsonl`
//! and `FLIGHT_monitor_smoke.chrome.json` (drop the latter on
//! <https://ui.perfetto.dev>), and the process exits non-zero so CI can
//! surface the dump as an artifact.

use stabilizing_storage::sim::SimDuration;
use stabilizing_storage::store::{FaultPlan, StoreBuilder, Workload};

fn main() {
    // The observability suite's differential workload: YCSB-B over 8
    // shards on a 9-server asynchronous fleet (t = 1), with a server
    // corruption at 3 ms and link garbage at 5 ms — tolerated faults, so
    // the monitor must stay quiet.
    let mut wl = Workload::ycsb_b(300, 64);
    wl.seed = 42;
    wl.faults = FaultPlan {
        byzantine: vec![],
        corruptions: vec![(SimDuration::millis(3), 1)],
        client_corruptions: vec![],
        link_garbage: vec![(SimDuration::millis(5), 2)],
        data_wipes: vec![],
        reshards: vec![],
    };
    let builder = StoreBuilder::asynchronous(1)
        .seed(2015)
        .shards(8)
        .writers(4)
        .extra_readers(2)
        .trace(1 << 16)
        .monitor();
    let (report, sys) = wl.run(&builder);
    println!(
        "workload: {} ops completed in {} sim-ms",
        report.completed,
        report.sim_elapsed.as_nanos() / 1_000_000
    );

    let monitor = sys.monitor().expect("monitor enabled");
    println!(
        "monitor: {} ops observed, {} keys, window {} ops, {} violations, {} saturations",
        monitor.ops_observed(),
        monitor.keys_monitored(),
        monitor.max_window_in_use(),
        monitor.violations().len(),
        monitor.saturations()
    );

    let health = sys.health();
    for s in &health.shards {
        println!("  shard {}: {} puts, {} gets", s.shard, s.puts, s.gets);
    }
    for r in &health.replicas {
        println!(
            "  server {} (pid {}): {} msgs in, {} msgs out",
            r.server, r.pid, r.msgs_in, r.msgs_out
        );
    }
    println!(
        "  pending {}, hot shards {:?}, slow paths {:?}",
        health.pending_ops, health.hot_shards, health.slow
    );
    println!(
        "  metadata {} B, bulk {} B on the wire",
        health.metadata_bytes_sent, health.bulk_bytes_sent
    );

    if !monitor.is_clean() || health.pending_ops > 0 {
        let record = sys.flight_recorder();
        std::fs::write("FLIGHT_monitor_smoke.jsonl", record.to_jsonl())
            .expect("write flight JSONL");
        std::fs::write("FLIGHT_monitor_smoke.chrome.json", record.to_chrome_trace())
            .expect("write flight Chrome trace");
        eprintln!(
            "monitor smoke FAILED: {} violations, {} pending ops — flight record \
             written to FLIGHT_monitor_smoke.jsonl / .chrome.json ({} slice records)",
            monitor.violations().len(),
            health.pending_ops,
            record.records.len()
        );
        std::process::exit(1);
    }
    println!("monitor smoke passed: no violations, no pending ops");
}
