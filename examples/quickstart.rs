//! Quickstart: a practically-atomic single-writer single-reader register
//! on nine servers, one of which is Byzantine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use stabilizing_storage::check::{check_linearizable, count_inversions, InitialState};
use stabilizing_storage::core::harness::SwsrBuilder;
use stabilizing_storage::core::ByzStrategy;

fn main() {
    // n = 9 servers, t = 1 Byzantine (the asynchronous bound is n >= 8t+1).
    // Server 3 equivocates: it answers some queries honestly and garbles
    // others.
    let mut register = SwsrBuilder::new(9, 1)
        .seed(2026)
        .byzantine(3, ByzStrategy::Equivocate)
        .build_atomic(0u64);

    println!("writing 1..=5 and reading after each write…");
    for v in 1..=5u64 {
        register.write(v);
        register.read();
        assert!(register.settle(), "operations must terminate");
    }

    let history = register.history();
    for op in history.ops() {
        println!(
            "  {:>9} {:?} [{} → {}]",
            format!("{}", op.client),
            op.kind,
            op.invoked,
            op.responded
        );
    }

    let report = check_linearizable(&history, &InitialState::Any).expect("checkable history");
    println!(
        "atomic?   {} ({} ops, {} quiescent segments)",
        report.linearizable, report.ops_checked, report.segments
    );
    println!("inversions: {}", count_inversions(&history).len());
    assert!(report.linearizable);
}
