//! The resilience gap: the same register needs `n ≥ 8t + 1` servers under
//! asynchrony but only `n ≥ 3t + 1` when links are timely (§3.3 /
//! Appendix A) — because timeouts let clients wait for *all* correct
//! servers instead of the first `n − t`. First at the single-register
//! layer, then for the whole sharded key-value store, where the
//! mode-carrying `StoreBuilder` runs the identical YCSB workload on
//! either fleet.
//!
//! ```sh
//! cargo run --example sync_vs_async
//! ```

use stabilizing_storage::check::check_regularity;
use stabilizing_storage::core::harness::SwsrBuilder;
use stabilizing_storage::core::ByzStrategy;
use stabilizing_storage::sim::{LatencyHistogram, SimDuration};
use stabilizing_storage::store::{FaultPlan, StoreBuilder, Workload};

fn run(label: &str, mut sys: stabilizing_storage::core::harness::RegularSwsr<u64>) {
    let start = std::time::Instant::now();
    for v in 1..=8u64 {
        sys.write(v);
        sys.read();
        assert!(sys.settle(), "{label}: ops must terminate");
    }
    let h = sys.history();
    let rep = check_regularity(&h, &[0]);
    let mut lat = LatencyHistogram::new();
    for o in h.ops() {
        lat.record((o.responded - o.invoked).as_nanos());
    }
    let s = lat.summary().expect("history is non-empty");
    println!(
        "{label:<28} servers={:<3} regular={} op-latency mean={} p50={} p99={} (wall {:?})",
        sys.servers.len(),
        rep.is_regular(),
        SimDuration::nanos(s.mean_ns),
        SimDuration::nanos(s.p50_ns),
        SimDuration::nanos(s.p99_ns),
        start.elapsed(),
    );
}

fn main() {
    let t = 1;
    println!("tolerating t = {t} Byzantine server (silent):");

    // Asynchronous: n = 8t + 1 = 9 servers needed.
    run(
        "asynchronous n=9 (8t+1)",
        SwsrBuilder::new(9, t)
            .seed(5)
            .byzantine(0, ByzStrategy::Silent)
            .build_regular(0u64),
    );

    // Synchronous: n = 3t + 1 = 4 servers suffice for the same t.
    run(
        "synchronous  n=4 (3t+1)",
        SwsrBuilder::new(4, t)
            .seed(5)
            .sync(SimDuration::millis(1))
            .byzantine(0, ByzStrategy::Silent)
            .build_regular(0u64),
    );

    println!();
    println!("the synchronous deployment uses fewer than half the servers,");
    println!("paying for it with timeout-bound operation latency.");

    // The same gap at store scale: one declarative workload, two fleets.
    println!();
    println!("the whole store makes the same trade — 300-op YCSB-B, 16 keys / 4 shards,");
    println!("one Byzantine server, both modes at t = 1:");
    let mut wl = Workload::ycsb_b(300, 16);
    wl.faults = FaultPlan::one_byzantine(0, ByzStrategy::Silent);
    for (label, builder) in [
        ("asynchronous n=9", StoreBuilder::asynchronous(t)),
        (
            "synchronous  n=4",
            StoreBuilder::synchronous(t, SimDuration::millis(1)),
        ),
    ] {
        let builder = builder.seed(5).shards(4).writers(2).extra_readers(1);
        let cfg = builder.config();
        let start = std::time::Instant::now();
        let (report, sys) = wl.run(&builder);
        let atomic = sys
            .check_per_key_atomicity()
            .expect("per-key atomicity in both modes");
        println!(
            "{label:<20} servers={:<3} ops/sim-s={:<8.0} wire={:>6.1} KiB \
             atomic-keys={atomic} (wall {:?})",
            cfg.n,
            report.ops_per_sim_sec,
            report.total_bytes() as f64 / 1024.0,
            start.elapsed(),
        );
    }
}
