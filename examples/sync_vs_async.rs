//! The resilience gap: the same register needs `n ≥ 8t + 1` servers under
//! asynchrony but only `n ≥ 3t + 1` when links are timely (§3.3 /
//! Appendix A) — because timeouts let clients wait for *all* correct
//! servers instead of the first `n − t`.
//!
//! ```sh
//! cargo run --example sync_vs_async
//! ```

use stabilizing_storage::check::check_regularity;
use stabilizing_storage::core::harness::SwsrBuilder;
use stabilizing_storage::core::ByzStrategy;
use stabilizing_storage::sim::SimDuration;

fn run(label: &str, mut sys: stabilizing_storage::core::harness::RegularSwsr<u64>) {
    let start = std::time::Instant::now();
    for v in 1..=8u64 {
        sys.write(v);
        sys.read();
        assert!(sys.settle(), "{label}: ops must terminate");
    }
    let h = sys.history();
    let rep = check_regularity(&h, &[0]);
    let mean_ns: u64 = h
        .ops()
        .iter()
        .map(|o| (o.responded - o.invoked).as_nanos())
        .sum::<u64>()
        / h.len() as u64;
    println!(
        "{label:<28} servers={:<3} regular={} mean-op-latency={} (wall {:?})",
        sys.servers.len(),
        rep.is_regular(),
        SimDuration::nanos(mean_ns),
        start.elapsed(),
    );
}

fn main() {
    let t = 1;
    println!("tolerating t = {t} Byzantine server (silent):");

    // Asynchronous: n = 8t + 1 = 9 servers needed.
    run(
        "asynchronous n=9 (8t+1)",
        SwsrBuilder::new(9, t)
            .seed(5)
            .byzantine(0, ByzStrategy::Silent)
            .build_regular(0u64),
    );

    // Synchronous: n = 3t + 1 = 4 servers suffice for the same t.
    run(
        "synchronous  n=4 (3t+1)",
        SwsrBuilder::new(4, t)
            .seed(5)
            .sync(SimDuration::millis(1))
            .byzantine(0, ByzStrategy::Silent)
            .build_regular(0u64),
    );

    println!();
    println!("the synchronous deployment uses fewer than half the servers,");
    println!("paying for it with timeout-bound operation latency.");
}
