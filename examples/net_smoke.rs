//! CI socket smoke: run a YCSB-B workload over **real loopback TCP** —
//! every protocol message through the canonical wire codec — with the
//! online atomicity monitor attached, check the per-key histories, and
//! fail loudly if anything is off.
//!
//! ```sh
//! cargo run --release --example net_smoke
//! ```
//!
//! The socket runtime has no deterministic tracer (scheduling is the
//! OS's), so on failure this dumps what the socket run *does* know —
//! the monitor's violations with their culprit ops, the per-key
//! histories involved, and the transport counters — to
//! `FLIGHT_net_smoke.jsonl`, and exits non-zero so CI surfaces the dump
//! as an artifact.
//!
//! A wall-clock budget guards the whole run: loopback YCSB-B at this
//! size finishes in well under a second, so a minute means a deadlock,
//! a reconnect storm, or a stuck reader — all bugs this smoke exists to
//! catch.

use stabilizing_storage::net::NetStoreSystem;
use stabilizing_storage::sim::SimDuration;
use stabilizing_storage::store::{OpMix, StoreBuilder, Workload};
use std::time::{Duration, Instant};

const WALL_BUDGET: Duration = Duration::from_secs(60);

/// The socket wipe drill: a bulk-plane deployment with anti-entropy
/// loses one data replica's blob stores mid-run — over real TCP, not
/// the simulator — and the self-healing plane must pull the committed
/// blobs back from window peers, visible as slow-path repair rounds.
fn wipe_drill() {
    let mut wl = Workload::ycsb_b(400, 32);
    wl.mix = OpMix::ycsb_a(); // write-heavy, so stores populate early
    wl.faults.data_wipes = vec![(SimDuration::millis(30), 2)];
    let builder = StoreBuilder::asynchronous(1)
        .seed(77)
        .shards(4)
        .writers(2)
        .bulk()
        .anti_entropy(SimDuration::millis(5))
        .monitor();
    let mut sys: NetStoreSystem<u64> = NetStoreSystem::deploy(&builder).expect("deploy drill");
    let report = sys.run_workload(&wl, |id| id);
    assert_eq!(report.completed, wl.ops, "drill workload must complete");

    // The repair runs on the servers' own anti-entropy timers; give it
    // wall-clock room after the workload drains.
    let deadline = Instant::now() + Duration::from_secs(20);
    while sys.slow_paths().repair_rounds == 0 && Instant::now() < deadline {
        sys.await_completions(Duration::from_millis(50));
    }
    let repairs = sys.slow_paths().repair_rounds;
    assert!(
        repairs > 0,
        "the wiped replica must repair itself over TCP (0 repair rounds observed)"
    );
    sys.check_per_key_atomicity()
        .expect("drill histories must stay atomic through wipe and repair");
    assert!(
        sys.monitor_violations().is_empty(),
        "monitor must stay quiet through the drill: {:?}",
        sys.monitor_violations()
    );
    println!("wipe drill: {repairs} repair rounds over TCP, histories atomic, monitor quiet");
}

fn main() {
    let wl = Workload::ycsb_b(300, 64);
    let builder = StoreBuilder::asynchronous(1)
        .seed(2015)
        .shards(8)
        .writers(4)
        .extra_readers(2)
        .monitor();

    let started = Instant::now();
    let mut sys: NetStoreSystem<u64> = NetStoreSystem::deploy(&builder).expect("deploy");
    let report = sys.run_workload(&wl, |id| id);
    println!(
        "workload: {} ops completed in {:.1} wall-ms over TCP ({:.0} ops/s, p50 get {} ns)",
        report.completed,
        report.wall_elapsed.as_secs_f64() * 1e3,
        report.ops_per_wall_sec,
        report.get_latency.as_ref().map_or(0, |l| l.p50_ns),
    );
    println!(
        "transport: {} drops, {} decode rejects, slow paths {:?}",
        report.transport_drops, report.decode_rejects, report.slow
    );

    let monitor = sys.monitor().expect("monitor enabled");
    println!(
        "monitor: {} ops observed, {} keys, window {} ops, {} violations, {} saturations",
        monitor.ops_observed(),
        monitor.keys_monitored(),
        monitor.max_window_in_use(),
        monitor.violations().len(),
        monitor.saturations()
    );

    let atomicity = sys.check_per_key_atomicity();
    let overtime = started.elapsed() > WALL_BUDGET;
    let clean = monitor.is_clean()
        && atomicity.is_ok()
        && report.completed == wl.ops
        && report.decode_rejects == 0
        && !overtime;
    if !clean {
        // No deterministic tracer exists on this backend; dump the
        // violations, their keys' histories, and the counters instead.
        let mut lines = Vec::new();
        for v in sys.monitor_violations() {
            lines.push(format!(
                "{{\"violation\":{{\"key\":{:?},\"op\":{},\"at_ns\":{},\"culprits\":{:?}}}}}",
                v.key, v.op, v.at_ns, v.culprits
            ));
            lines.push(format!(
                "{{\"history\":{{\"key\":{:?},\"records\":{:?}}}}}",
                v.key,
                format!("{:?}", sys.history_for_key(&v.key))
            ));
        }
        if let Err(e) = &atomicity {
            lines.push(format!("{{\"atomicity_error\":{:?}}}", e.to_string()));
        }
        lines.push(format!(
            "{{\"counters\":{{\"completed\":{},\"issued\":{},\"transport_drops\":{},\
             \"decode_rejects\":{},\"wall_ms\":{:.1},\"overtime\":{}}}}}",
            report.completed,
            report.issued,
            report.transport_drops,
            report.decode_rejects,
            started.elapsed().as_secs_f64() * 1e3,
            overtime
        ));
        std::fs::write("FLIGHT_net_smoke.jsonl", lines.join("\n") + "\n")
            .expect("write flight JSONL");
        eprintln!(
            "net smoke FAILED: {} violations, atomicity {:?}, {} decode rejects, \
             overtime={overtime} — dump written to FLIGHT_net_smoke.jsonl",
            monitor.violations().len(),
            atomicity.as_ref().err(),
            report.decode_rejects
        );
        std::process::exit(1);
    }
    println!(
        "net smoke passed: {} keys atomic, no violations, {:.1} wall-ms total",
        atomicity.expect("checked above"),
        started.elapsed().as_secs_f64() * 1e3
    );

    wipe_drill();
}
