//! The same protocol state machines, off the simulator: a regular SWSR
//! register deployment running on OS threads and crossbeam channels via
//! [`ThreadRuntime`](stabilizing_storage::sim::ThreadRuntime).
//!
//! ```sh
//! cargo run --example live_threads
//! ```

use stabilizing_storage::core::harness::SwsrBuilder;
use stabilizing_storage::core::{ClientOut, RegId, RegMsg, RegisterConfig};
use stabilizing_storage::core::{
    PlainStamp, RegularPolicy, RegularReader, RegularWriter, ServerNode,
};
use stabilizing_storage::sim::{Node, OpId, ProcessId, ThreadRuntime};
use std::time::Duration;

fn main() {
    let (n, t) = (9, 1);
    let cfg = RegisterConfig::asynchronous(n, t);

    // ProcessIds are assigned by position: 0 = writer, 1 = reader, 2.. = servers.
    let writer = ProcessId(0);
    let reader = ProcessId(1);
    let servers: Vec<ProcessId> = (2..2 + n as u32).map(ProcessId).collect();

    let mut nodes: Vec<Box<dyn Node<Msg = RegMsg<u64>, Out = ClientOut<u64>> + Send>> = vec![
        Box::new(RegularWriter::<u64>::new(
            RegId(0),
            cfg,
            servers.clone(),
            vec![reader],
            PlainStamp,
        )),
        Box::new(RegularReader::<u64>::new(
            RegId(0),
            cfg,
            servers.clone(),
            RegularPolicy,
        )),
    ];
    for _ in 0..n {
        nodes.push(Box::new(ServerNode::<u64, ClientOut<u64>>::new(0)));
    }

    println!("spawning {} node threads…", nodes.len());
    let rt = ThreadRuntime::spawn(nodes, 42);

    for v in 1..=5u64 {
        rt.invoke::<RegularWriter<u64>>(writer, move |w, ctx| {
            w.invoke_write(OpId(v * 2), v, ctx);
        });
        let (pid, out) = rt
            .recv_output(Duration::from_secs(10))
            .expect("write completes");
        println!("  {pid}: {out:?}");

        rt.invoke::<RegularReader<u64>>(reader, move |r, ctx| {
            r.invoke_read(OpId(v * 2 + 1), ctx);
        });
        let (pid, out) = rt
            .recv_output(Duration::from_secs(10))
            .expect("read completes");
        println!("  {pid}: {out:?}");
        if let ClientOut::ReadDone { value, .. } = out {
            assert_eq!(value, v, "read returns the just-written value");
        }
    }

    rt.shutdown();
    println!("threads joined; same state machines, no simulator ✓");

    // And the simulator agrees, for the record:
    let mut sim_reg = SwsrBuilder::new(n, t).seed(42).build_regular(0u64);
    sim_reg.write(1);
    sim_reg.read();
    assert!(sim_reg.settle());
    println!("simulator cross-check ✓");
}
