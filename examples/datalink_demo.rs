//! The self-stabilizing data link of footnote 3: exactly-once, in-order
//! delivery over a bounded-capacity channel that loses and duplicates
//! packets — starting from a fully garbage initial configuration.
//!
//! ```sh
//! cargo run --example datalink_demo
//! ```

use stabilizing_storage::link::DataLinkSim;

fn main() {
    const GARBAGE: u64 = 1 << 32;

    let mut dl = DataLinkSim::new(4, 0.2, 0.1, 99);
    // Arbitrary initial configuration: both channels full of garbage,
    // endpoint states corrupted.
    dl.scramble(|rng| GARBAGE + rng.next_u64() % 100);

    println!("sending 0..10 over a cap=4 channel, 20% loss, 10% duplication,");
    println!("from a corrupted initial configuration…");
    for m in 0..10u64 {
        dl.sender.send(m);
    }
    assert!(dl.run_until_idle(2_000_000), "link must drain");

    let delivered = dl.delivered();
    println!("delivered: {delivered:?}");
    let spurious = delivered.iter().filter(|&&m| m >= GARBAGE).count();
    let real: Vec<u64> = delivered.iter().copied().filter(|&m| m < GARBAGE).collect();
    println!("  spurious deliveries from initial garbage: {spurious} (bounded by cap)",);
    println!("  genuine deliveries: {real:?}");
    println!(
        "  packets sent for 10 messages: {} ({}x overhead — the price of cap+1 acknowledgements per phase)",
        dl.packets_sent(),
        dl.packets_sent() / 10
    );
    // After the first message the link is stabilized: everything from 1 on
    // is delivered exactly once, in order.
    let tail: Vec<u64> = real.iter().copied().filter(|&m| m >= 1).collect();
    assert_eq!(tail, (1..10).collect::<Vec<_>>());
    println!("stabilized: messages 1..10 delivered exactly once, in order ✓");
}
