//! A replicated configuration store built on the MWMR atomic register
//! (Figure 4): three operator consoles concurrently update and read a
//! cluster-wide config version, with bounded epochs handling counter
//! exhaustion and corrupted labels.
//!
//! Two deliberately observable corner cases of the paper's construction:
//!
//! - at the **epoch-exhaustion boundary** (sequence number hits the bound),
//!   the read path republishes the reader's *own* value under a fresh epoch
//!   (Figure 4 line 11) — a read there may return a stale version. With the
//!   paper's `2^64` bound this is unobservable; this demo uses bound 4 to
//!   make it visible.
//! - after a transient fault, stabilization of the composition needs every
//!   console to perform an operation: each register is repaired by *its*
//!   writer (the own-register refresh rule).
//!
//! ```sh
//! cargo run --example config_store
//! ```

use stabilizing_storage::check::{check_linearizable, InitialState};
use stabilizing_storage::core::harness::SwsrBuilder;
use stabilizing_storage::sim::SimDuration;

fn main() {
    // Three consoles (m = 3), nine servers, t = 1. Tiny per-epoch sequence
    // bound (4) so the demo exercises next_epoch.
    let mut store = SwsrBuilder::new(9, 1).seed(11).build_mwmr(0u64, 3, 4);

    println!("three consoles pushing config versions 1..=9…");
    for v in 1..=9u64 {
        let console = ((v - 1) % 3) as usize;
        store.write(console, v);
        assert!(store.settle(), "push {v} must complete");
        // Another console immediately reads the config back.
        let observer = (console + 1) % 3;
        store.read(observer);
        assert!(store.settle(), "pull after {v} must complete");
    }

    let history = store.history();
    let reads: Vec<u64> = history.reads().map(|r| *r.kind.value()).collect();
    println!("observed config versions: {reads:?}");
    println!("  (a stale version right at a multiple of the sequence bound");
    println!("   is the Figure 4 line-11 exhaustion boundary, not a bug)");

    // After a transient fault that scrambles the servers' epoch labels,
    // the consoles repair the register by starting a fresh epoch. All
    // three must act: each console's own register is repaired by itself.
    println!("corrupting all server state (epochs may become incomparable)…");
    store.corrupt_all_servers();
    store.run_for(SimDuration::millis(5));
    store.write(0, 100);
    store.write(1, 101);
    store.read(2);
    assert!(store.settle(), "post-fault operations must complete");
    let history = store.history();
    let first = history.reads().last().map(|r| *r.kind.value()).unwrap();
    println!(
        "first post-fault read: {first} (may be any recovered version while \
         concurrent epoch renewals race)"
    );

    // Eventual atomicity: after the renewal dust settles, a fresh
    // non-concurrent write totally orders everything that follows.
    store.write(0, 102);
    assert!(store.settle());
    let h = store.history();
    let stab_marker = h
        .writes()
        .find(|w| *w.kind.value() == 102)
        .map(|w| w.invoked)
        .unwrap();
    store.read(1);
    store.read(2);
    assert!(store.settle());
    let history = store.history();
    let finals: Vec<u64> = history
        .suffix(stab_marker)
        .reads()
        .map(|r| *r.kind.value())
        .collect();
    println!("reads after the settling write: {finals:?}");
    assert!(
        finals.iter().all(|&v| v == 102),
        "all consoles agree on 102"
    );

    let tail = history.suffix(stab_marker);
    let rep = check_linearizable(&tail, &InitialState::Any).expect("checkable");
    println!("post-stabilization tail linearizable? {}", rep.linearizable);
    assert!(rep.linearizable);
}
