//! The sharded key-value store under a YCSB-B load with a Byzantine
//! server — run **twice**: once with full replication (every shard-map
//! snapshot to all 9 servers) and once on the content-addressed bulk
//! plane (payload bytes on 2t+1 = 3 data replicas, 40-byte references
//! through the metadata quorum), printing the bytes-on-wire delta.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use stabilizing_storage::core::ByzStrategy;
use stabilizing_storage::store::{FaultPlan, SizedVal, StoreBuilder, Workload, WorkloadReport};

fn print_report(mode: &str, report: &WorkloadReport, atomic_keys: usize) {
    println!("[{mode}]");
    println!(
        "  completed:   {} of {} ({} reads / {} writes)",
        report.completed, report.issued, report.reads, report.writes
    );
    println!(
        "  throughput:  {:.0} ops/simulated-second ({:?} elapsed)",
        report.ops_per_sim_sec, report.sim_elapsed
    );
    println!(
        "  bytes:       {:.1} KiB metadata + {:.1} KiB bulk = {:.1} KiB total",
        report.metadata_bytes as f64 / 1024.0,
        report.bulk_bytes as f64 / 1024.0,
        report.total_bytes() as f64 / 1024.0,
    );
    println!(
        "  transport:   {} delivery events ({} simulator events)",
        report.messages_delivered, report.events_processed
    );
    println!("  verified:    {atomic_keys} per-key histories all atomic ✓");
}

fn main() {
    // One shared fleet: 9 servers, 1 Byzantine (async bound n >= 8t+1) —
    // Byzantine at *both* planes: garbage register replies and garbled
    // bulk bytes. 8 shards over 4 writer clients, 2 read-only clients,
    // 1000-op YCSB-B (95% reads), Zipfian popularity, 1 KiB values.
    let full = StoreBuilder::asynchronous(1)
        .seed(2015)
        .shards(8)
        .writers(4)
        .extra_readers(2);
    let bulk = full.clone().bulk();
    let mut workload = Workload::ycsb_b(1000, 64);
    workload.faults = FaultPlan::one_byzantine(4, ByzStrategy::RandomGarbage);
    let mk = |id| SizedVal::new(id, 1024);

    println!("1000-op YCSB-B, 64 keys / 8 shards / 9 servers (1 Byzantine), 1 KiB values\n");

    let (report_full, sys_full) = workload.run_with(&full, mk);
    let atomic_full = sys_full
        .check_per_key_atomicity()
        .expect("per-key atomicity must hold within n >= 8t+1");
    print_report("full replication", &report_full, atomic_full);

    println!();
    let (report_bulk, mut sys_bulk) = workload.run_with(&bulk, mk);
    let atomic_bulk = sys_bulk
        .check_per_key_atomicity()
        .expect("per-key atomicity must hold in bulk mode too");
    print_report("bulk 2t+1 data replicas", &report_bulk, atomic_bulk);

    let ratio = report_full.total_bytes() as f64 / report_bulk.total_bytes().max(1) as f64;
    println!(
        "\nbytes-on-wire delta: {:.1} KiB -> {:.1} KiB ({ratio:.1}x less traffic)",
        report_full.total_bytes() as f64 / 1024.0,
        report_bulk.total_bytes() as f64 / 1024.0,
    );

    // Where did the payload bytes land? Exactly on each shard's 3-replica
    // window.
    let placement = sys_bulk.bulk_placement();
    let mut sample: Vec<String> = placement
        .iter()
        .take(3)
        .map(|(shard, servers)| format!("shard {shard} → servers {servers:?}"))
        .collect();
    sample.push(String::from("…"));
    println!("bulk placement:      {}", sample.join(", "));

    // A peek at key routing.
    let router = sys_bulk.router();
    println!(
        "routing:             e.g. key0 → shard {} (writer {}), key1 → shard {} (writer {})",
        router.shard_of("key0"),
        router.writer_of("key0"),
        router.shard_of("key1"),
        router.writer_of("key1"),
    );
}
