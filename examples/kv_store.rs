//! The sharded key-value store under a YCSB-B load with a Byzantine
//! server: 64 keys hash-sharded over 8 registers, all multiplexed on one
//! shared 9-server fleet (t = 1), then every key's history independently
//! verified atomic.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use stabilizing_storage::core::ByzStrategy;
use stabilizing_storage::store::{FaultPlan, StoreBuilder, Workload};

fn main() {
    // One shared fleet: 9 servers, 1 Byzantine (async bound n >= 8t+1).
    // 8 shards partitioned over 4 writer clients; 2 extra read-only
    // clients join the fray.
    let builder = StoreBuilder::new(9, 1)
        .seed(2015)
        .shards(8)
        .writers(4)
        .extra_readers(2);

    // 1000 operations, 95% reads, Zipfian key popularity over 64 keys,
    // closed-loop clients; server 4 garbles every payload it returns.
    let mut workload = Workload::ycsb_b(1000, 64);
    workload.faults = FaultPlan::one_byzantine(4, ByzStrategy::RandomGarbage);

    println!("running 1000-op YCSB-B over 64 keys / 8 shards / 9 servers (1 Byzantine)…");
    let (report, sys) = workload.run(&builder);

    println!("  issued:      {}", report.issued);
    println!("  completed:   {}", report.completed);
    println!("  reads:       {}", report.reads);
    println!("  writes:      {}", report.writes);
    println!("  sim elapsed: {:?}", report.sim_elapsed);
    println!(
        "  throughput:  {:.0} ops/simulated-second",
        report.ops_per_sim_sec
    );
    println!(
        "  transport:   {} delivery events ({} simulator events)",
        report.messages_delivered, report.events_processed
    );

    // The store's correctness claim: every key's extracted history is
    // independently linearizable, Byzantine server notwithstanding.
    let keys = sys
        .check_per_key_atomicity()
        .expect("per-key atomicity must hold within n >= 8t+1");
    println!("  verified:    {keys} per-key histories all atomic ✓");

    // A peek at data placement.
    let router = sys.router();
    println!(
        "  routing:     e.g. key0 → shard {} (writer {}), key1 → shard {} (writer {})",
        router.shard_of("key0"),
        router.writer_of("key0"),
        router.shard_of("key1"),
        router.writer_of("key1"),
    );
}
