//! # stabilizing-storage
//!
//! A complete Rust reproduction of *"Stabilizing Server-Based Storage in
//! Byzantine Asynchronous Message-Passing Systems"* (Bonomi, Dolev,
//! Potop-Butucaru, Raynal — PODC 2015): self-stabilizing Byzantine-tolerant
//! read/write registers built on asynchronous message-passing servers.
//!
//! This crate is the façade over the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `sbs-core` | the four register constructions, Byzantine adversaries, scenario harness |
//! | [`sim`] | `sbs-sim` | deterministic discrete-event substrate + thread runtime |
//! | [`link`] | `sbs-link` | ss-broadcast session layer + self-stabilizing data link |
//! | [`stamps`] | `sbs-stamps` | bounded sequence numbers, epochs, timestamps |
//! | [`check`] | `sbs-check` | regularity / atomicity / inversion checkers + differential harness |
//! | [`baseline`] | `sbs-baseline` | masking-quorum and quiescence-dependent comparison registers |
//! | [`bulk`] | `sbs-bulk` | content-addressed bulk plane: wide FNV digests, verified blob stores, 2t+1 placement |
//! | [`store`] | `sbs-store` | sharded multi-register key-value store + YCSB-style workload engine |
//! | [`net`] | `sbs-net` | canonical wire codec + real-socket (TCP) transport runtime and harness |
//!
//! ## Quickstart
//!
//! ```
//! use stabilizing_storage::core::harness::SwsrBuilder;
//! use stabilizing_storage::check::{check_linearizable, InitialState};
//!
//! // A practically-atomic SWSR register on 9 servers tolerating 1
//! // Byzantine server (n ≥ 8t + 1), over asynchronous links.
//! let mut reg = SwsrBuilder::new(9, 1).seed(42).build_atomic(0u64);
//! reg.write(7);
//! reg.read();
//! assert!(reg.settle());
//!
//! let history = reg.history();
//! assert!(check_linearizable(&history, &InitialState::Any).unwrap().linearizable);
//! ```
//!
//! ## Scaling up: the key-value store
//!
//! Above the single-register constructions sits [`store`]: string keys are
//! hash-sharded onto many logical registers multiplexed over one shared
//! server fleet, driven by a YCSB-style workload engine with Zipfian and
//! uniform popularity, open/closed-loop clients, and pluggable fault
//! plans. With `StoreBuilder::bulk` the payload bytes move to 2t+1
//! content-addressed data replicas ([`bulk`]) while the register quorum
//! carries fixed-size digest references.
//!
//! ```
//! use stabilizing_storage::store::{StoreBuilder, Workload};
//!
//! // 16 keys on 4 shards, one shared 9-server fleet (t = 1, asynchronous).
//! let builder = StoreBuilder::asynchronous(1).seed(1).shards(4).writers(2);
//! let (report, sys) = Workload::ycsb_b(50, 16).run(&builder);
//! assert_eq!(report.completed, 50);
//! sys.check_per_key_atomicity().unwrap();
//! ```
//!
//! The builder is **mode-carrying**: `StoreBuilder::synchronous(t,
//! link_bound)` deploys the same store on the Figure-5 fleet — `n = 3t +
//! 1` servers instead of `n = 8t + 1` — with every client round waiting
//! for all `n` acknowledgements or the timeout derived from the declared
//! link bound, and the whole workload/checker stack runs unchanged over
//! either mode (the `sync_vs_async` example measures the trade).
//!
//! The same deployment also runs over **real TCP sockets**: [`net`]
//! frames every protocol message through a canonical, Byzantine-hardened
//! wire codec and hosts the identical node state machines on OS threads
//! with one socket per peer link — and the differential test suite holds
//! the socket execution to the same per-key atomicity standard as the
//! simulator, on the same workloads.
//!
//! See the `examples/` directory for fault drills, the MWMR configuration
//! store, the sharded key-value store under load (`kv_store`), the
//! synchronous/asynchronous resilience gap, the data-link demo, and
//! running the same protocol code on OS threads.

pub use sbs_baseline as baseline;
pub use sbs_bulk as bulk;
pub use sbs_check as check;
pub use sbs_core as core;
pub use sbs_link as link;
pub use sbs_net as net;
pub use sbs_sim as sim;
pub use sbs_stamps as stamps;
pub use sbs_store as store;
